package core

// Concurrent batch estimation. A single Estimator is shared by a
// bounded worker pool; output is always input-ordered and byte-identical
// to the sequential path, so callers can parallelize corpus-scale runs
// without giving up determinism.
//
// Two dispatch strategies exist (see shard.go for the why):
//
//   - Sharded (the default for parallel cached batches): phrases are
//     hash-partitioned onto slots, workers own disjoint slot subsets,
//     and repeats are served from per-slot L1 caches with no shared
//     writes on the hot path.
//
//   - Work-stealing (sequential batches, uncached estimators, and the
//     DisableSharding ablation): indices are handed out by an atomic
//     counter, which balances skewed per-item costs but funnels every
//     repeat through the shared L2.
//
// Both strategies run on estimator-owned worker environments (scratch +
// pinned match session) rather than sync.Pool scratches: pool per-P
// caches drain under GC and goroutine migration, and every drained
// checkout re-warms a cold scratch — the measured allocs/op inflation
// of the oversubscribed parallel path.

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"nutriprofile/internal/match"
	"nutriprofile/internal/memo"
	"nutriprofile/internal/yield"
)

// normWorkers clamps a requested worker count: <= 0 selects
// GOMAXPROCS, and the pool never exceeds the number of work items.
func normWorkers(workers, items int) int {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > items {
		workers = items
	}
	if workers < 1 {
		workers = 1
	}
	return workers
}

// forEachIndex runs fn(i, w) for i in [0, n) on a bounded worker pool.
// Indices are handed out by an atomic counter, so the pool stays busy
// even when per-item cost is skewed (cache hits vs full matches). Each
// worker checks one environment out of the estimator's free list —
// pinned to snap's matcher — and reuses it for every index it claims,
// flushing its stats once on exit.
func (e *Estimator) forEachIndex(snap *Snapshot, n, workers int, fn func(int, *worker)) {
	e.forEachIndexCtx(context.Background(), snap, n, workers, fn)
}

// forEachIndexCtx is forEachIndex with cancellation: once ctx is done,
// workers stop claiming new indices and the call returns ctx's error.
// Items already in flight run to completion (per-item work is
// microseconds; there is no partial-item state to unwind), so the
// cancellation latency is one item per worker.
func (e *Estimator) forEachIndexCtx(ctx context.Context, snap *Snapshot, n, workers int, fn func(int, *worker)) error {
	workers = normWorkers(workers, n)
	done := ctx.Done()
	if workers == 1 {
		w := worker{env: e.getEnv(snap)}
		defer e.flushWorker(&w, 0)
		for i := 0; i < n; i++ {
			select {
			case <-done:
				return ctx.Err()
			default:
			}
			fn(i, &w)
		}
		return nil
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for wk := 0; wk < workers; wk++ {
		go func(wk int) {
			defer wg.Done()
			w := worker{env: e.getEnv(snap)}
			defer e.flushWorker(&w, wk%statStripes)
			for {
				select {
				case <-done:
					return
				default:
				}
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				fn(i, &w)
			}
		}(wk)
	}
	wg.Wait()
	return ctx.Err()
}

// batchInto estimates every phrase into out[i]. Parallel batches on a
// caching estimator take the sharded path (phrase-hash partition,
// per-slot L1s, zero shared writes on repeats); everything else runs on
// the work-stealing pool. Results are identical either way.
func (e *Estimator) batchInto(ctx context.Context, phrases []string, workers int, out []IngredientResult) error {
	// One pin per batch: every phrase in the batch — and every worker's
	// match session — resolves against the same snapshot, even if a
	// reload lands mid-batch.
	v := e.pin()
	workers = normWorkers(workers, len(phrases))
	if workers > 1 && e.phraseCache != nil && !e.opts.DisableSharding {
		if workers > numSlots {
			workers = numSlots
		}
		return e.estimateShardedCtx(ctx, v, phrases, workers, out)
	}
	return e.forEachIndexCtx(ctx, v.snap, len(phrases), workers, func(i int, w *worker) {
		// nil slot: no L1 on the work-stealing path (indices are claimed
		// dynamically, so no worker owns a stable phrase subset), but the
		// per-worker phrase counting still applies.
		out[i] = e.estimateSlot(v, phrases[i], w, nil)
	})
}

// EstimateBatch estimates every phrase concurrently with one worker per
// CPU, returning results in input order. Equivalent to (but faster
// than) calling EstimateIngredient in a loop.
func (e *Estimator) EstimateBatch(phrases []string) []IngredientResult {
	return e.EstimateBatchWorkers(phrases, 0)
}

// EstimateBatchWorkers is EstimateBatch with an explicit worker count:
// workers <= 0 selects GOMAXPROCS, workers == 1 runs sequentially on
// the calling goroutine. The pool is bounded — at most `workers`
// goroutines exist at any time regardless of batch size.
func (e *Estimator) EstimateBatchWorkers(phrases []string, workers int) []IngredientResult {
	if len(phrases) == 0 {
		return nil
	}
	out := make([]IngredientResult, len(phrases))
	e.batchInto(context.Background(), phrases, workers, out)
	return out
}

// EstimateBatchContext is EstimateBatchWorkers with cancellation: when
// ctx is cancelled (or its deadline passes) mid-batch, workers stop
// claiming new phrases and the call returns ctx's error with a nil
// slice. Results are only valid when err == nil — a cancelled batch has
// estimated an unpredictable prefix of the input. This is the entry
// point the serving layer uses so an abandoned HTTP request stops
// consuming pipeline workers.
func (e *Estimator) EstimateBatchContext(ctx context.Context, phrases []string, workers int) ([]IngredientResult, error) {
	if len(phrases) == 0 {
		return nil, nil
	}
	out := make([]IngredientResult, len(phrases))
	if err := e.batchInto(ctx, phrases, workers, out); err != nil {
		return nil, err
	}
	return out, nil
}

// EstimateRecipeContext is EstimateRecipeConcurrent with cancellation
// propagated into the ingredient worker pool (see EstimateBatchContext).
// The returned error is ctx.Err() on cancellation, or the recipe
// validation error; the result is identical to the sequential path when
// err == nil.
func (e *Estimator) EstimateRecipeContext(ctx context.Context, phrases []string, servings, workers int) (RecipeResult, error) {
	if len(phrases) == 0 {
		return RecipeResult{}, errors.New("core: recipe has no ingredients")
	}
	if servings <= 0 {
		return RecipeResult{}, fmt.Errorf("core: invalid servings %d", servings)
	}
	ingredients, err := e.EstimateBatchContext(ctx, phrases, workers)
	if err != nil {
		return RecipeResult{}, err
	}
	return aggregateRecipe(ingredients, servings), nil
}

// EstimateRecipeCookedContext is EstimateRecipeContext followed by the
// cooking-yield correction of the given method (see EstimateRecipeCooked).
func (e *Estimator) EstimateRecipeCookedContext(ctx context.Context, phrases []string, servings int, m yield.Method, workers int) (RecipeResult, error) {
	out, err := e.EstimateRecipeContext(ctx, phrases, servings, workers)
	if err != nil {
		return out, err
	}
	out.Total = yield.Apply(out.Total, m)
	out.PerServing = yield.Apply(out.PerServing, m)
	return out, nil
}

// RecipeInput is one recipe for batch estimation.
type RecipeInput struct {
	Phrases  []string
	Servings int
	// Method, when not yield.None, applies the cooking-yield correction
	// to the recipe's totals (as EstimateRecipeCooked does).
	Method yield.Method
}

// RecipeOutcome pairs a recipe's result with its per-recipe validation
// error, so one malformed recipe (no ingredients, bad servings) does
// not abort a corpus-scale run.
type RecipeOutcome struct {
	Result RecipeResult
	Err    error
}

// estimateRecipeWorker runs one recipe sequentially on an already-held
// worker environment: EstimateRecipes parallelizes across recipes, so
// nesting another pool per recipe would only multiply goroutines. Slot
// L1s are skipped (nil slot) — recipe workers don't own slots; repeats
// still hit the shared L2. ingredients is the caller-provided result
// destination, len(r.Phrases) long.
func (e *Estimator) estimateRecipeWorker(v view, r RecipeInput, w *worker, ingredients []IngredientResult) RecipeOutcome {
	if len(r.Phrases) == 0 {
		return RecipeOutcome{Err: errors.New("core: recipe has no ingredients")}
	}
	if r.Servings <= 0 {
		return RecipeOutcome{Err: fmt.Errorf("core: invalid servings %d", r.Servings)}
	}
	for i, p := range r.Phrases {
		ingredients[i] = e.estimateSlot(v, p, w, nil)
	}
	res := aggregateRecipe(ingredients, r.Servings)
	res.Total = yield.Apply(res.Total, r.Method)
	res.PerServing = yield.Apply(res.PerServing, r.Method)
	return RecipeOutcome{Result: res}
}

// EstimateRecipes estimates a corpus of recipes on a bounded worker
// pool sharing this Estimator. Outcomes are input-ordered and
// byte-identical to calling EstimateRecipeCooked sequentially; workers
// <= 0 selects GOMAXPROCS.
func (e *Estimator) EstimateRecipes(recipes []RecipeInput, workers int) []RecipeOutcome {
	if len(recipes) == 0 {
		return nil
	}
	out := make([]RecipeOutcome, len(recipes))
	v := e.pin()
	e.forEachIndex(v.snap, len(recipes), workers, func(i int, w *worker) {
		out[i] = e.estimateRecipeWorker(v, recipes[i], w, make([]IngredientResult, len(recipes[i].Phrases)))
	})
	return out
}

// EstimateRecipesInto is EstimateRecipes on caller-owned memory: the
// windowed feed behind the streaming /v1/batch endpoint, whose bulk
// streams reuse one result arena across every window instead of
// allocating per line. recipes[i] is estimated into out[i], and each
// recipe's per-ingredient results are carved out of arena — which must
// hold at least the window's total phrase count — so a warm window
// performs no heap allocation in this layer. Outcomes (including their
// Ingredients slices) alias arena and are valid until the caller reuses
// it. Cancellation follows EstimateBatchContext: on a done ctx workers
// stop claiming recipes, the error is ctx.Err(), and out holds an
// unpredictable prefix.
func (e *Estimator) EstimateRecipesInto(ctx context.Context, recipes []RecipeInput, workers int, out []RecipeOutcome, arena []IngredientResult) error {
	if len(recipes) == 0 {
		return nil
	}
	if len(out) < len(recipes) {
		return fmt.Errorf("core: out holds %d outcomes for %d recipes", len(out), len(recipes))
	}
	total := 0
	for i := range recipes {
		total += len(recipes[i].Phrases)
	}
	if total > len(arena) {
		return fmt.Errorf("core: arena holds %d results for %d ingredient lines", len(arena), total)
	}
	// Carve disjoint arena windows up front so workers write their
	// recipe's results without coordination. The empty destination is
	// parked in out[i] (workers overwrite out[i] wholesale, reclaiming
	// the capacity through the carve below).
	off := 0
	for i := range recipes {
		n := len(recipes[i].Phrases)
		out[i] = RecipeOutcome{}
		out[i].Result.Ingredients = arena[off : off : off+n]
		off += n
	}
	v := e.pin()
	if normWorkers(workers, len(recipes)) == 1 {
		// Inline sequential loop rather than forEachIndexCtx: the closure
		// handed to the pool escapes (the parallel branch ships it to
		// goroutines), which would cost one heap allocation per window —
		// the difference between the bulk hot path's zero-alloc pin and
		// almost-zero.
		w := worker{env: e.getEnv(v.snap)}
		defer e.flushWorker(&w, 0)
		done := ctx.Done()
		for i := range recipes {
			select {
			case <-done:
				return ctx.Err()
			default:
			}
			dst := out[i].Result.Ingredients
			out[i] = e.estimateRecipeWorker(v, recipes[i], &w, dst[:len(recipes[i].Phrases)])
		}
		return nil
	}
	return e.forEachIndexCtx(ctx, v.snap, len(recipes), workers, func(i int, w *worker) {
		dst := out[i].Result.Ingredients
		out[i] = e.estimateRecipeWorker(v, recipes[i], w, dst[:len(recipes[i].Phrases)])
	})
}

// CacheStats reports the phrase- and match-level memoization counters.
// Both are zero-valued when Options.CacheSize == 0.
func (e *Estimator) CacheStats() (phrase, match memo.Stats) {
	if e.phraseCache != nil {
		phrase = e.phraseCache.Stats()
	}
	if e.matchCache != nil {
		match = e.matchCache.Stats()
	}
	return phrase, match
}

// MatcherStats reports the description matcher's index shape (vocabulary
// size, posting lists) and arena-pool counters, alongside CacheStats the
// observability surface of the estimation hot path (cmd/nutriprofile
// -stats).
func (e *Estimator) MatcherStats() match.MatcherStats {
	return e.snap.Load().matcher.Stats()
}
