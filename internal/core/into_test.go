package core

import (
	"context"
	"strings"
	"testing"

	"nutriprofile/internal/usda"
)

// TestEstimateRecipesIntoMatches pins the caller-owned-memory batch
// entry point against EstimateRecipes: identical outcomes on both the
// inline sequential path (workers == 1, the bulk stream's default) and
// the parallel path, with every Ingredients slice carved out of the
// caller's arena.
func TestEstimateRecipesIntoMatches(t *testing.T) {
	corpus, phrases := testCorpus(t, 30)
	inputs := make([]RecipeInput, len(phrases))
	for i := range phrases {
		inputs[i] = RecipeInput{
			Phrases:  phrases[i],
			Servings: corpus.Recipes[i].Servings,
			Method:   corpus.Recipes[i].Method,
		}
	}
	inputs = append(inputs,
		RecipeInput{Phrases: nil, Servings: 2},                    // per-recipe error
		RecipeInput{Phrases: []string{"1 cup milk"}, Servings: 0}, // per-recipe error
	)

	e, err := New(usda.Seed(), nil, Options{CacheSize: 1 << 10})
	if err != nil {
		t.Fatal(err)
	}
	want := e.EstimateRecipes(inputs, 4)

	total := 0
	for i := range inputs {
		total += len(inputs[i].Phrases)
	}
	for _, workers := range []int{1, 4} {
		out := make([]RecipeOutcome, len(inputs))
		arena := make([]IngredientResult, total)
		if err := e.EstimateRecipesInto(context.Background(), inputs, workers, out, arena); err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		off := 0
		for i := range out {
			if got, ref := renderResult(out[i].Result, out[i].Err), renderResult(want[i].Result, want[i].Err); got != ref {
				t.Fatalf("workers=%d recipe %d diverged:\n got: %s\nwant: %s", workers, i, got, ref)
			}
			n := len(inputs[i].Phrases)
			if n > 0 && out[i].Err == nil {
				if &out[i].Result.Ingredients[0] != &arena[off] {
					t.Fatalf("workers=%d recipe %d: Ingredients not carved from the caller arena", workers, i)
				}
			}
			off += n
		}
	}
}

// TestEstimateRecipesIntoValidation pins the size contract: undersized
// out or arena is an error before any estimation happens, and the empty
// batch is a no-op.
func TestEstimateRecipesIntoValidation(t *testing.T) {
	e := NewDefault()
	ctx := context.Background()
	inputs := []RecipeInput{{Phrases: []string{"1 cup milk", "salt"}, Servings: 1}}

	if err := e.EstimateRecipesInto(ctx, nil, 1, nil, nil); err != nil {
		t.Fatalf("empty batch: %v", err)
	}
	err := e.EstimateRecipesInto(ctx, inputs, 1, nil, make([]IngredientResult, 2))
	if err == nil || !strings.Contains(err.Error(), "outcomes") {
		t.Fatalf("undersized out: %v", err)
	}
	err = e.EstimateRecipesInto(ctx, inputs, 1, make([]RecipeOutcome, 1), make([]IngredientResult, 1))
	if err == nil || !strings.Contains(err.Error(), "arena") {
		t.Fatalf("undersized arena: %v", err)
	}
}

// TestEstimateRecipesIntoCancelled pins cancellation on the sequential
// path: a dead context returns ctx.Err() instead of estimating.
func TestEstimateRecipesIntoCancelled(t *testing.T) {
	e := NewDefault()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	inputs := []RecipeInput{{Phrases: []string{"1 cup milk"}, Servings: 1}}
	err := e.EstimateRecipesInto(ctx, inputs, 1, make([]RecipeOutcome, 1), make([]IngredientResult, 1))
	if err != context.Canceled {
		t.Fatalf("got %v, want context.Canceled", err)
	}
}
