package core

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"nutriprofile/internal/ner"
	"nutriprofile/internal/pipeline"
	"nutriprofile/internal/usda"
)

// gatedTagger wraps the rule tagger, counting Tag calls and blocking
// each one on a gate. Implementing only ner.Tagger (not ScratchTagger)
// keeps the count exact: every pipeline pass takes this path once.
type gatedTagger struct {
	inner ner.RuleTagger
	gate  chan struct{}
	calls atomic.Int64
}

func (g *gatedTagger) Tag(tokens []string) []ner.Label {
	g.calls.Add(1)
	<-g.gate
	return g.inner.Tag(tokens)
}

// TestCoalescingStormExactlyOnce drives 32 goroutines across 4 unique
// phrases while the pipeline is gated shut, then asserts exactly one
// pipeline execution per unique key: 4 leads, 28 coalesced waiters, 4
// Tag calls. Deterministic because no result can land in the phrase
// cache until the gate opens — every goroutine either leads or joins a
// flight, never races a completed entry. Run under -race this also
// exercises the Group's publication ordering.
func TestCoalescingStormExactlyOnce(t *testing.T) {
	tagger := &gatedTagger{gate: make(chan struct{})}
	e, err := New(usda.Seed(), tagger, Options{CacheSize: 256})
	if err != nil {
		t.Fatal(err)
	}

	phrases := []string{
		"2 cups flour",
		"1 tbsp butter",
		"3 large eggs",
		"1 cup whole milk",
	}
	const goroutines = 32 // 8 per phrase
	results := make([]IngredientResult, goroutines)
	var wg sync.WaitGroup
	for i := 0; i < goroutines; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			sc := pipeline.Get()
			defer pipeline.Put(sc)
			results[i] = e.EstimateIngredientScratch(phrases[i%len(phrases)], sc)
		}(i)
	}

	// Wait for the storm to assemble: one leader per phrase blocked in
	// Tag, everyone else parked on a flight.
	deadline := time.Now().Add(10 * time.Second)
	for {
		s := e.FlightStats()
		if s.Leads == 4 && s.Coalesced == goroutines-4 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("storm never assembled: %+v (tag calls %d)", s, tagger.calls.Load())
		}
		time.Sleep(time.Millisecond)
	}
	close(tagger.gate)
	wg.Wait()

	if n := tagger.calls.Load(); n != int64(len(phrases)) {
		t.Errorf("pipeline executed %d times, want %d (exactly once per unique key)", n, len(phrases))
	}
	s := e.FlightStats()
	if s.Leads != 4 || s.Coalesced != goroutines-4 || s.InFlight != 0 {
		t.Errorf("final flight stats = %+v, want 4 leads, %d coalesced, 0 in flight", s, goroutines-4)
	}

	// Every caller of the same phrase got the same result, identical to
	// a fresh uncoalesced estimate.
	plain, err := New(usda.Seed(), nil, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range results {
		phrase := phrases[i%len(phrases)]
		if r.Phrase != phrase {
			t.Errorf("caller %d: Phrase = %q, want %q", i, r.Phrase, phrase)
		}
		want := plain.EstimateIngredient(phrase)
		if r.Extraction != want.Extraction || r.Grams != want.Grams ||
			r.Profile != want.Profile || r.Mapped != want.Mapped {
			t.Errorf("caller %d (%q): coalesced result diverges from fresh estimate", i, phrase)
		}
	}

	// The results are cached now: a repeat estimate is a pure cache hit
	// and must not open a new flight.
	before := e.FlightStats()
	for _, p := range phrases {
		if r := e.EstimateIngredient(p); r.Phrase != p {
			t.Errorf("cached repeat of %q: Phrase = %q", p, r.Phrase)
		}
	}
	if after := e.FlightStats(); after.Leads != before.Leads {
		t.Errorf("cache hits opened new flights: %+v → %+v", before, after)
	}
}

// TestDisableCoalescing asserts the ablation switch bypasses the flight
// group entirely while preserving results and caching.
func TestDisableCoalescing(t *testing.T) {
	e, err := New(usda.Seed(), nil, Options{CacheSize: 64, DisableCoalescing: true})
	if err != nil {
		t.Fatal(err)
	}
	r1 := e.EstimateIngredient("2 cups flour")
	r2 := e.EstimateIngredient("2 cups flour")
	if r1.Phrase != r2.Phrase || r1.Grams != r2.Grams || r1.Profile != r2.Profile {
		t.Error("repeat estimate diverged with coalescing disabled")
	}
	if s := e.FlightStats(); s.Leads != 0 || s.Coalesced != 0 {
		t.Errorf("flight stats touched despite DisableCoalescing: %+v", s)
	}
	phrase, _ := e.CacheStats()
	if phrase.Hits == 0 {
		t.Error("phrase cache not hit on repeat")
	}
}
