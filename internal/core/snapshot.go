package core

// Hot-swappable database snapshots (DESIGN.md §13). The estimator's
// database, matcher and interned vocabulary version together behind one
// atomic pointer: a request pins the pointer once and computes entirely
// against that Snapshot, so a concurrent Install can never give it a
// matcher from one database and nutrient vectors from another. RCU
// rather than an RWMutex: readers pay one atomic load (the serving hot
// path keeps its 0 allocs/op and gains no lock), writers build the new
// state off to the side and publish it with one store — in-flight
// requests simply finish on the snapshot they pinned.
//
// Cache consistency across a swap is the subtle part. Three caches hold
// snapshot-derived results: the phrase and match memo caches and the
// per-slot L1s (shard.go). The invalidation protocol:
//
//   - Snapshot.gen is the invalidation generation, carried INSIDE the
//     snapshot so (state, generation) are read atomically together.
//     Install bumps gen and version; ObserveUnits installs a copy of
//     the current snapshot with only gen bumped (same db/matcher —
//     unit statistics changed, not the database).
//
//   - pin() snapshots the memo caches' purge generations BEFORE the
//     atomic pointer load, and results are stored with PutHashGen.
//     Writers publish the new snapshot pointer FIRST, then Purge. With
//     Go's sequentially consistent atomics, a reader that captured a
//     post-purge cache generation must observe the post-swap pointer
//     on its subsequent load; a reader that captured a pre-purge
//     generation has its store either dropped (generation mismatch,
//     checked under the shard lock) or landed before the purge clears
//     that shard. Either way no result computed against snapshot N is
//     readable from a cache after the purge that retired N.
//
//   - Slot L1s stamp their contents with the pinned snapshot's gen at
//     claim time (claimSlot) and clear on mismatch, tying every cached
//     entry to the generation that produced it.
//
// One deliberate softness: a flight-coalescing waiter that pins the new
// snapshot microseconds after a swap can still share the old-snapshot
// result of a leader that started before it (the result is never
// cached — its store is generation-dropped). The ISSUE contract is
// byte-identical results for requests that started before the swap,
// which the per-request pin gives deterministically; closing the
// flight window would serialize every miss on the swap lock for a
// window shorter than one pipeline pass. Documented in DESIGN.md §13.

import (
	"errors"
	"fmt"

	"nutriprofile/internal/match"
	"nutriprofile/internal/usda"
)

// Snapshot is one immutable (database, matcher, vocabulary) triple plus
// its version identity. Estimation reads never mix state across two
// snapshots: every request resolves descriptions, weight tables and
// nutrient vectors against the single snapshot it pinned.
type Snapshot struct {
	db      *usda.DB
	matcher *match.Matcher
	// version counts database swaps (Install), starting at 1 for the
	// boot database. Monotonic; /v1/stats and /admin/reload expose it.
	version uint64
	// gen counts cache invalidations: every Install AND every
	// ObserveUnits pass bumps it. The slot L1s key their contents on it.
	gen uint64
	// source describes where the database came from (boot flag, image
	// path) for observability.
	source string
}

// DB returns the snapshot's composition table.
func (s *Snapshot) DB() *usda.DB { return s.db }

// Matcher returns the snapshot's description matcher.
func (s *Snapshot) Matcher() *match.Matcher { return s.matcher }

// Version returns the snapshot's swap version.
func (s *Snapshot) Version() uint64 { return s.version }

// Source describes the snapshot's origin.
func (s *Snapshot) Source() string { return s.source }

// view is one request's pinned read context: the snapshot plus the
// memo-cache generations captured BEFORE the snapshot load (the order
// the no-stale-store argument above requires). Threaded by value
// through the estimation call chain.
type view struct {
	snap      *Snapshot
	phraseGen uint64
	matchGen  uint64
}

// pin captures a consistent read context. Cache generations first, then
// the snapshot pointer — never reorder these loads (see the package
// comment for why).
func (e *Estimator) pin() view {
	var v view
	if e.phraseCache != nil {
		v.phraseGen = e.phraseCache.Gen()
		v.matchGen = e.matchCache.Gen()
	}
	v.snap = e.snap.Load()
	return v
}

// Current returns the live snapshot. Requests that need consistency
// across multiple calls should resolve everything through one Snapshot
// rather than calling accessors repeatedly.
func (e *Estimator) Current() *Snapshot { return e.snap.Load() }

// SnapshotStats is the wire form of the live snapshot's identity
// (nutriserve GET /v1/stats, POST /admin/reload).
type SnapshotStats struct {
	Version uint64 `json:"version"`
	Gen     uint64 `json:"gen"`
	Foods   int    `json:"foods"`
	Source  string `json:"source"`
}

// SnapshotStats reports the live snapshot's identity.
func (e *Estimator) SnapshotStats() SnapshotStats {
	s := e.snap.Load()
	return SnapshotStats{Version: s.version, Gen: s.gen, Foods: s.db.Len(), Source: s.source}
}

// Install atomically replaces the estimator's database under live
// traffic: requests already pinned to the old snapshot finish on it
// unperturbed, requests pinned after the store see only the new one.
// The matcher is built before the swap — from the prebuilt idx
// (a baked image, validated structurally) when given, otherwise by
// indexing db's descriptions — so the swap itself is one pointer store
// plus cache purges. Concurrent Installs serialize; versions are
// strictly monotonic.
func (e *Estimator) Install(db *usda.DB, idx *match.Index, source string) (SnapshotStats, error) {
	if db == nil {
		return SnapshotStats{}, errors.New("core: nil database")
	}
	var m *match.Matcher
	if idx != nil {
		var err error
		if m, err = match.NewFromIndex(db, e.opts.matchOptions(), idx); err != nil {
			return SnapshotStats{}, fmt.Errorf("core: installing database: %w", err)
		}
	} else {
		m = match.New(db, e.opts.matchOptions())
	}

	e.swapMu.Lock()
	old := e.snap.Load()
	ns := &Snapshot{
		db: db, matcher: m,
		version: old.version + 1,
		gen:     old.gen + 1,
		source:  source,
	}
	// Publish first, purge second: a reader that observes a post-purge
	// cache generation is thereby guaranteed to load ns, not old.
	e.snap.Store(ns)
	if e.phraseCache != nil {
		e.phraseCache.Purge()
		e.matchCache.Purge()
	}
	e.swapMu.Unlock()
	return SnapshotStats{Version: ns.version, Gen: ns.gen, Foods: db.Len(), Source: source}, nil
}
