// Package nutrition defines the nutrient-vector arithmetic the pipeline's
// final stage performs (§II-C: "we calculate the nutrition profile of each
// ingredient by merging the recipe data and nutrition data on the unit and
// multiplying the nutrition profile by the quantity of the ingredient").
//
// A Profile carries the macro- and micro-nutrients USDA-SR reports per
// 100 g of food. Ingredient profiles scale linearly with gram weight and
// recipe profiles are the sum of ingredient profiles (the Schakel et al.
// approximation the paper adopts).
package nutrition

import (
	"fmt"
	"math"
	"strings"

	"nutriprofile/internal/jsonx"
)

// Profile holds nutrient amounts. In a food-composition table a Profile is
// per 100 g; after scaling it is per actual ingredient amount or per
// recipe/serving. Units follow USDA-SR conventions.
// The JSON tags are the serving layer's wire form (nutriserve).
type Profile struct {
	EnergyKcal float64 `json:"energy_kcal"`
	ProteinG   float64 `json:"protein_g"`
	FatG       float64 `json:"fat_g"`
	CarbsG     float64 `json:"carbs_g"`
	FiberG     float64 `json:"fiber_g"`
	SugarG     float64 `json:"sugar_g"`
	CalciumMg  float64 `json:"calcium_mg"`
	IronMg     float64 `json:"iron_mg"`
	SodiumMg   float64 `json:"sodium_mg"`
	VitCMg     float64 `json:"vitc_mg"`
	CholMg     float64 `json:"chol_mg"`
}

// Scale returns the profile multiplied by factor. Scaling a per-100 g
// profile by grams/100 yields the profile of that many grams.
func (p Profile) Scale(factor float64) Profile {
	return Profile{
		EnergyKcal: p.EnergyKcal * factor,
		ProteinG:   p.ProteinG * factor,
		FatG:       p.FatG * factor,
		CarbsG:     p.CarbsG * factor,
		FiberG:     p.FiberG * factor,
		SugarG:     p.SugarG * factor,
		CalciumMg:  p.CalciumMg * factor,
		IronMg:     p.IronMg * factor,
		SodiumMg:   p.SodiumMg * factor,
		VitCMg:     p.VitCMg * factor,
		CholMg:     p.CholMg * factor,
	}
}

// ForGrams interprets p as a per-100 g profile and returns the profile of
// the given gram weight.
func (p Profile) ForGrams(grams float64) Profile { return p.Scale(grams / 100) }

// Add returns the element-wise sum of two profiles.
func (p Profile) Add(q Profile) Profile {
	return Profile{
		EnergyKcal: p.EnergyKcal + q.EnergyKcal,
		ProteinG:   p.ProteinG + q.ProteinG,
		FatG:       p.FatG + q.FatG,
		CarbsG:     p.CarbsG + q.CarbsG,
		FiberG:     p.FiberG + q.FiberG,
		SugarG:     p.SugarG + q.SugarG,
		CalciumMg:  p.CalciumMg + q.CalciumMg,
		IronMg:     p.IronMg + q.IronMg,
		SodiumMg:   p.SodiumMg + q.SodiumMg,
		VitCMg:     p.VitCMg + q.VitCMg,
		CholMg:     p.CholMg + q.CholMg,
	}
}

// Sum folds a slice of profiles.
func Sum(ps []Profile) Profile {
	var total Profile
	for _, p := range ps {
		total = total.Add(p)
	}
	return total
}

// IsZero reports whether every nutrient is exactly zero.
func (p Profile) IsZero() bool { return p == Profile{} }

// Valid reports whether every nutrient is finite and non-negative — the
// invariant the property tests enforce end-to-end.
func (p Profile) Valid() bool {
	for _, v := range p.fields() {
		if math.IsNaN(v) || math.IsInf(v, 0) || v < 0 {
			return false
		}
	}
	return true
}

func (p Profile) fields() [11]float64 {
	return [11]float64{
		p.EnergyKcal, p.ProteinG, p.FatG, p.CarbsG, p.FiberG, p.SugarG,
		p.CalciumMg, p.IronMg, p.SodiumMg, p.VitCMg, p.CholMg,
	}
}

// MacroEnergyKcal recomputes energy from the Atwater factors
// (4 kcal/g protein, 9 kcal/g fat, 4 kcal/g carbohydrate) — used by the
// synthetic database generator to keep nutrient vectors internally
// consistent.
func (p Profile) MacroEnergyKcal() float64 {
	return 4*p.ProteinG + 9*p.FatG + 4*p.CarbsG
}

// AppendJSON appends p's wire form, byte-identical to json.Marshal of
// the struct (same field order as the tags above, every field emitted).
// The serving layer's pooled codec calls this on its hot path; the
// equality is pinned by differential tests there and in this package.
func (p Profile) AppendJSON(b []byte) []byte {
	b = append(b, `{"energy_kcal":`...)
	b = jsonx.AppendFloat(b, p.EnergyKcal)
	b = append(b, `,"protein_g":`...)
	b = jsonx.AppendFloat(b, p.ProteinG)
	b = append(b, `,"fat_g":`...)
	b = jsonx.AppendFloat(b, p.FatG)
	b = append(b, `,"carbs_g":`...)
	b = jsonx.AppendFloat(b, p.CarbsG)
	b = append(b, `,"fiber_g":`...)
	b = jsonx.AppendFloat(b, p.FiberG)
	b = append(b, `,"sugar_g":`...)
	b = jsonx.AppendFloat(b, p.SugarG)
	b = append(b, `,"calcium_mg":`...)
	b = jsonx.AppendFloat(b, p.CalciumMg)
	b = append(b, `,"iron_mg":`...)
	b = jsonx.AppendFloat(b, p.IronMg)
	b = append(b, `,"sodium_mg":`...)
	b = jsonx.AppendFloat(b, p.SodiumMg)
	b = append(b, `,"vitc_mg":`...)
	b = jsonx.AppendFloat(b, p.VitCMg)
	b = append(b, `,"chol_mg":`...)
	b = jsonx.AppendFloat(b, p.CholMg)
	return append(b, '}')
}

// String renders a compact single-line summary.
func (p Profile) String() string {
	return fmt.Sprintf("%.0f kcal, %.1fg protein, %.1fg fat, %.1fg carbs",
		p.EnergyKcal, p.ProteinG, p.FatG, p.CarbsG)
}

// Table renders a multi-line nutrient table for CLI output.
func (p Profile) Table() string {
	var b strings.Builder
	row := func(name, unit string, v float64) {
		fmt.Fprintf(&b, "  %-14s %9.2f %s\n", name, v, unit)
	}
	row("Energy", "kcal", p.EnergyKcal)
	row("Protein", "g", p.ProteinG)
	row("Fat", "g", p.FatG)
	row("Carbohydrate", "g", p.CarbsG)
	row("Fiber", "g", p.FiberG)
	row("Sugar", "g", p.SugarG)
	row("Calcium", "mg", p.CalciumMg)
	row("Iron", "mg", p.IronMg)
	row("Sodium", "mg", p.SodiumMg)
	row("Vitamin C", "mg", p.VitCMg)
	row("Cholesterol", "mg", p.CholMg)
	return b.String()
}
