package nutrition

// DailyValues is the FDA adult reference intake used for %DV labeling —
// the comparison surface dietary-analytics applications (the paper's
// abstract use case) report against.
var DailyValues = Profile{
	EnergyKcal: 2000,
	ProteinG:   50,
	FatG:       78,
	CarbsG:     275,
	FiberG:     28,
	SugarG:     50, // added-sugar DV; total sugar has no official DV
	CalciumMg:  1300,
	IronMg:     18,
	SodiumMg:   2300,
	VitCMg:     90,
	CholMg:     300,
}

// PercentDV is one nutrient's share of its daily value.
type PercentDV struct {
	Name    string
	Amount  float64
	Unit    string
	Percent float64 // 0.25 = 25 % DV
}

// PercentDaily computes each nutrient's share of the reference daily
// values, in label order. Zero-DV nutrients are skipped defensively.
func (p Profile) PercentDaily() []PercentDV {
	rows := []struct {
		name string
		amt  float64
		dv   float64
		unit string
	}{
		{"Energy", p.EnergyKcal, DailyValues.EnergyKcal, "kcal"},
		{"Protein", p.ProteinG, DailyValues.ProteinG, "g"},
		{"Fat", p.FatG, DailyValues.FatG, "g"},
		{"Carbohydrate", p.CarbsG, DailyValues.CarbsG, "g"},
		{"Fiber", p.FiberG, DailyValues.FiberG, "g"},
		{"Sugar", p.SugarG, DailyValues.SugarG, "g"},
		{"Calcium", p.CalciumMg, DailyValues.CalciumMg, "mg"},
		{"Iron", p.IronMg, DailyValues.IronMg, "mg"},
		{"Sodium", p.SodiumMg, DailyValues.SodiumMg, "mg"},
		{"Vitamin C", p.VitCMg, DailyValues.VitCMg, "mg"},
		{"Cholesterol", p.CholMg, DailyValues.CholMg, "mg"},
	}
	out := make([]PercentDV, 0, len(rows))
	for _, r := range rows {
		if r.dv <= 0 {
			continue
		}
		out = append(out, PercentDV{
			Name: r.name, Amount: r.amt, Unit: r.unit, Percent: r.amt / r.dv,
		})
	}
	return out
}
