package nutrition

import (
	"encoding/json"
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func sample() Profile {
	return Profile{
		EnergyKcal: 717, ProteinG: 0.85, FatG: 81.1, CarbsG: 0.06,
		SodiumMg: 643, CholMg: 215,
	}
}

func TestScale(t *testing.T) {
	p := sample().Scale(0.5)
	if p.EnergyKcal != 358.5 {
		t.Errorf("Scale energy = %v, want 358.5", p.EnergyKcal)
	}
	if p.FatG != 40.55 {
		t.Errorf("Scale fat = %v, want 40.55", p.FatG)
	}
}

func TestForGrams(t *testing.T) {
	// 1 tsp of salted butter weighs ~4.7 g → ~33.7 kcal; the paper's §III
	// reference point is "1 teaspoon of it is equivalent to 35 calories".
	p := sample().ForGrams(4.9)
	if math.Abs(p.EnergyKcal-35.13) > 0.01 {
		t.Errorf("ForGrams(4.9) energy = %v, want ≈35.13", p.EnergyKcal)
	}
}

func TestAddAndSum(t *testing.T) {
	a := Profile{EnergyKcal: 100, ProteinG: 5}
	b := Profile{EnergyKcal: 50, FatG: 3}
	c := a.Add(b)
	if c.EnergyKcal != 150 || c.ProteinG != 5 || c.FatG != 3 {
		t.Errorf("Add = %+v", c)
	}
	total := Sum([]Profile{a, b, c})
	if total.EnergyKcal != 300 {
		t.Errorf("Sum energy = %v, want 300", total.EnergyKcal)
	}
	if !Sum(nil).IsZero() {
		t.Error("Sum(nil) not zero")
	}
}

func TestValid(t *testing.T) {
	if !sample().Valid() {
		t.Error("sample profile invalid")
	}
	bad := Profile{EnergyKcal: -1}
	if bad.Valid() {
		t.Error("negative energy considered valid")
	}
	nan := Profile{FatG: math.NaN()}
	if nan.Valid() {
		t.Error("NaN fat considered valid")
	}
	inf := Profile{ProteinG: math.Inf(1)}
	if inf.Valid() {
		t.Error("infinite protein considered valid")
	}
}

func TestMacroEnergy(t *testing.T) {
	p := Profile{ProteinG: 10, FatG: 10, CarbsG: 10}
	if got := p.MacroEnergyKcal(); got != 170 {
		t.Errorf("MacroEnergyKcal = %v, want 170 (4+9+4 per 10g)", got)
	}
}

func TestStringAndTable(t *testing.T) {
	s := sample().String()
	if !strings.Contains(s, "717 kcal") {
		t.Errorf("String missing energy: %q", s)
	}
	tab := sample().Table()
	for _, want := range []string{"Energy", "Protein", "Sodium", "Cholesterol", "kcal"} {
		if !strings.Contains(tab, want) {
			t.Errorf("Table missing %q:\n%s", want, tab)
		}
	}
}

func TestPercentDaily(t *testing.T) {
	half := DailyValues.Scale(0.5)
	rows := half.PercentDaily()
	if len(rows) != 11 {
		t.Fatalf("rows = %d, want 11", len(rows))
	}
	for _, r := range rows {
		if math.Abs(r.Percent-0.5) > 1e-9 {
			t.Errorf("%s: %%DV = %.3f, want 0.5", r.Name, r.Percent)
		}
		if r.Unit == "" || r.Name == "" {
			t.Errorf("row missing metadata: %+v", r)
		}
	}
	var zero Profile
	for _, r := range zero.PercentDaily() {
		if r.Percent != 0 {
			t.Errorf("zero profile %%DV nonzero: %+v", r)
		}
	}
}

// genProfile builds a finite, bounded profile from raw quick values.
func genProfile(vals [11]float64) Profile {
	clamp := func(v float64) float64 {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return 0
		}
		return math.Abs(math.Mod(v, 1e6))
	}
	return Profile{
		EnergyKcal: clamp(vals[0]), ProteinG: clamp(vals[1]), FatG: clamp(vals[2]),
		CarbsG: clamp(vals[3]), FiberG: clamp(vals[4]), SugarG: clamp(vals[5]),
		CalciumMg: clamp(vals[6]), IronMg: clamp(vals[7]), SodiumMg: clamp(vals[8]),
		VitCMg: clamp(vals[9]), CholMg: clamp(vals[10]),
	}
}

// Property: Add is commutative and associative-with-Sum; Scale distributes
// over Add.
func TestProfileAlgebra(t *testing.T) {
	f := func(av, bv [11]float64, k float64) bool {
		if math.IsNaN(k) || math.IsInf(k, 0) {
			return true
		}
		k = math.Mod(math.Abs(k), 100)
		a, b := genProfile(av), genProfile(bv)
		if a.Add(b) != b.Add(a) {
			return false
		}
		lhs := a.Add(b).Scale(k)
		rhs := a.Scale(k).Add(b.Scale(k))
		return math.Abs(lhs.EnergyKcal-rhs.EnergyKcal) < 1e-6*(1+lhs.EnergyKcal)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: scaling by a non-negative factor preserves validity.
func TestScalePreservesValidity(t *testing.T) {
	f := func(av [11]float64, k float64) bool {
		if math.IsNaN(k) || math.IsInf(k, 0) {
			return true
		}
		k = math.Mod(math.Abs(k), 1000)
		return genProfile(av).Scale(k).Valid()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// TestAppendJSONMatchesEncodingJSON pins the hand-written encoder
// against json.Marshal across zero, typical, and boundary profiles.
func TestAppendJSONMatchesEncodingJSON(t *testing.T) {
	cases := []Profile{
		{},
		{EnergyKcal: 251, ProteinG: 8.5, FatG: 3.2, CarbsG: 47.9,
			FiberG: 1.7, SugarG: 0.25, CalciumMg: 15, IronMg: 2.9,
			SodiumMg: 681, VitCMg: 0, CholMg: 0},
		{EnergyKcal: 1e-7, ProteinG: 1e21, FatG: 0.1 + 0.2, CarbsG: 1.0 / 3},
		{SodiumMg: 123456.789, VitCMg: 5e-324, CholMg: 9.999e20},
	}
	for _, p := range cases {
		want, err := json.Marshal(p)
		if err != nil {
			t.Fatalf("json.Marshal(%+v): %v", p, err)
		}
		got := p.AppendJSON(nil)
		if string(got) != string(want) {
			t.Errorf("AppendJSON(%+v) = %s, want %s", p, got, want)
		}
	}
}
