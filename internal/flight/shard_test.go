package flight

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"

	"nutriprofile/internal/memo"
)

// TestShardedExactlyOncePerKey: sharding the group must not weaken the
// single-flight contract — under a 32-goroutine storm over many keys
// spread across every shard, each key's function runs exactly once per
// coalescing window, and the per-shard counters aggregate exactly.
func TestShardedExactlyOncePerKey(t *testing.T) {
	const (
		goroutines = 32
		keys       = 64
	)
	var g Group[int]
	execs := make([]atomic.Int64, keys)
	gate := make(chan struct{})

	// Cover every shard: with 64 FNV-hashed keys over 16 shards, each
	// shard owns several (verified below rather than assumed).
	shardsHit := map[uint64]bool{}
	keyBytes := make([][]byte, keys)
	for i := range keyBytes {
		keyBytes[i] = []byte(fmt.Sprintf("phrase-%d", i))
		shardsHit[memo.Hash(keyBytes[i])&(numShards-1)] = true
	}
	if len(shardsHit) < numShards/2 {
		t.Fatalf("key set covers only %d/%d shards; pick better keys", len(shardsHit), numShards)
	}

	var wg sync.WaitGroup
	for w := 0; w < goroutines; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			<-gate
			for i := 0; i < keys; i++ {
				v, _ := g.Do(keyBytes[i], func() int {
					execs[i].Add(1)
					return i
				})
				if v != i {
					t.Errorf("key %d: got %d", i, v)
					return
				}
			}
		}()
	}
	close(gate)
	wg.Wait()

	var totalExecs int64
	for i := range execs {
		n := execs[i].Load()
		if n < 1 || n > goroutines {
			t.Errorf("key %d executed %d times", i, n)
		}
		totalExecs += n
	}
	st := g.Stats()
	if st.Leads != uint64(totalExecs) {
		t.Errorf("leads = %d, executions = %d", st.Leads, totalExecs)
	}
	if st.Leads+st.Coalesced != uint64(goroutines*keys) {
		t.Errorf("leads+coalesced = %d, want %d calls", st.Leads+st.Coalesced, goroutines*keys)
	}
	if st.InFlight != 0 {
		t.Errorf("in-flight after drain = %d", st.InFlight)
	}
}

// TestShardSelectionMatchesMemoHash: a key's flight shard must derive
// from the same hash as its memo shard, and DoHash with that hash must
// coalesce with Do of the plain key.
func TestShardSelectionMatchesMemoHash(t *testing.T) {
	var g Group[string]
	key := []byte("2 cups all-purpose flour")
	h := memo.Hash(key)

	gate := make(chan struct{})
	started := make(chan struct{})
	done := make(chan struct{})
	go func() {
		defer close(done)
		g.DoHash(h, key, func() string { close(started); <-gate; return "lead" })
	}()
	<-started

	// A plain Do on the same key must find the in-flight leader.
	resCh := make(chan string, 1)
	go func() {
		v, shared := g.Do(key, func() string { return "dup" })
		if !shared {
			t.Error("duplicate was not coalesced with DoHash leader")
		}
		resCh <- v
	}()
	// Wait until the duplicate has registered as coalesced-in-waiting,
	// then release the leader.
	for g.Stats().InFlight != 1 {
	}
	for {
		st := g.Stats()
		if st.Coalesced >= 1 || len(resCh) > 0 {
			break
		}
	}
	close(gate)
	<-done
	if v := <-resCh; v != "lead" {
		t.Errorf("duplicate got %q, want leader's value", v)
	}
}
