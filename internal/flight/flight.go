// Package flight provides in-flight call coalescing (the "single
// flight" pattern): concurrent callers presenting the same key share
// one execution of the underlying function and all receive its result.
//
// It exists for the serving layer's cache-miss path. Recipe traffic is
// highly repetitive — the same ingredient phrases recur across
// requests — so under load the expensive pipeline pass for a phrase is
// frequently requested again while the first pass is still running.
// The memo cache only absorbs repeats *after* a result lands; flight
// absorbs the window in between. It sits below the cache: a lookup
// misses, then joins or leads a flight, and only the leader stores the
// result.
//
// The group is sharded by key hash (the same FNV-1a the memo layer
// shards on, so a phrase's flight shard and cache shard derive from one
// hash computation): each shard has its own mutex, map and counters on
// their own cache lines. The previous design kept one global map, which
// meant every leader's register/unregister and every duplicate's probe
// serialized on a single mutex — under a multi-core worker pool the
// coalescing layer itself became the contention point it existed to
// remove. With 16 shards, two concurrent misses only touch the same
// lock when their phrases hash together (DESIGN.md §12).
//
// Unlike golang.org/x/sync/singleflight, keys are []byte (the memo
// layer's native key type) and the duplicate-caller probe does not
// allocate: the map lookup compiles to a no-copy string view of the
// key. Only the leader — who is about to run a far more expensive
// function — materializes the key.
package flight

import (
	"sync"

	"nutriprofile/internal/memo"
)

// numShards is the shard count (a power of two). 16 matches the memo
// layer's default: enough that a worker pool of a few dozen goroutines
// rarely collides, few enough that the zero-value Group stays small.
const numShards = 16

// Group coalesces concurrent calls by key. The zero value is ready to
// use. V is the shared result type; all callers of a flight receive the
// same value, so V should be a value type or treated as immutable.
type Group[V any] struct {
	shards [numShards]flightShard[V]
}

// flightShard is one independently locked partition of the key space.
// Counters are plain fields updated under mu — no shared atomics on the
// hot path; Stats aggregates across shards on read.
type flightShard[V any] struct {
	mu sync.Mutex
	m  map[string]*call[V]

	leads     uint64 // calls that executed fn
	coalesced uint64 // calls that waited on another caller's fn

	// Keep neighboring shards' mutexes off this shard's cache lines.
	_ [64]byte
}

// call is one in-flight execution.
type call[V any] struct {
	wg       sync.WaitGroup
	val      V
	panicked any // non-nil if fn panicked; re-raised in every caller
}

// Stats is a point-in-time snapshot of a Group's counters.
type Stats struct {
	Leads     uint64 `json:"leads"`
	Coalesced uint64 `json:"coalesced"`
	InFlight  int    `json:"in_flight"`
}

// Do executes fn exactly once among all concurrent callers presenting
// the same key, returning fn's value to every caller. shared reports
// whether this caller received another caller's result. If fn panics,
// the panic propagates to every caller in the flight.
//
// The key is only retained (copied) by a leader; duplicate callers
// never allocate on the probe.
func (g *Group[V]) Do(key []byte, fn func() V) (v V, shared bool) {
	return g.DoHash(memo.Hash(key), key, fn)
}

// DoHash is Do with the key's hash (memo.Hash(key)) precomputed, so a
// caller that already hashed the key for its cache probe selects the
// flight shard without a second pass over the key bytes. The hash must
// be the FNV-1a of exactly the key bytes — two spellings of one key
// must present one hash, or they would coalesce in different shards.
func (g *Group[V]) DoHash(h uint64, key []byte, fn func() V) (v V, shared bool) {
	s := &g.shards[h&(numShards-1)]
	s.mu.Lock()
	if c, ok := s.m[string(key)]; ok {
		s.coalesced++
		s.mu.Unlock()
		c.wg.Wait()
		if c.panicked != nil {
			panic(c.panicked)
		}
		return c.val, true
	}
	if s.m == nil {
		s.m = make(map[string]*call[V])
	}
	c := &call[V]{}
	c.wg.Add(1)
	k := string(key) // leader pays the one copy; the map must own stable bytes
	s.m[k] = c
	s.leads++
	s.mu.Unlock()

	defer func() {
		if r := recover(); r != nil {
			c.panicked = r
		}
		// Publish before unregistering so a caller that found c always
		// sees the final value; callers arriving after the delete start
		// a fresh flight, which is correct — the result they would have
		// shared is (about to be) in the cache above us.
		c.wg.Done()
		s.mu.Lock()
		delete(s.m, k)
		s.mu.Unlock()
		if c.panicked != nil {
			panic(c.panicked)
		}
	}()

	c.val = fn()
	return c.val, false
}

// Stats aggregates the per-shard counters. The snapshot is not atomic
// across shards under concurrent load, which is fine for monitoring;
// each per-shard counter is monotonic.
func (g *Group[V]) Stats() Stats {
	var st Stats
	for i := range g.shards {
		s := &g.shards[i]
		s.mu.Lock()
		st.Leads += s.leads
		st.Coalesced += s.coalesced
		st.InFlight += len(s.m)
		s.mu.Unlock()
	}
	return st
}
