// Package flight provides in-flight call coalescing (the "single
// flight" pattern): concurrent callers presenting the same key share
// one execution of the underlying function and all receive its result.
//
// It exists for the serving layer's cache-miss path. Recipe traffic is
// highly repetitive — the same ingredient phrases recur across
// requests — so under load the expensive pipeline pass for a phrase is
// frequently requested again while the first pass is still running.
// The memo cache only absorbs repeats *after* a result lands; flight
// absorbs the window in between. It sits below the cache: a lookup
// misses, then joins or leads a flight, and only the leader stores the
// result.
//
// Unlike golang.org/x/sync/singleflight, keys are []byte (the memo
// layer's native key type) and the duplicate-caller probe does not
// allocate: the map lookup compiles to a no-copy string view of the
// key. Only the leader — who is about to run a far more expensive
// function — materializes the key.
package flight

import "sync"

// Group coalesces concurrent calls by key. The zero value is ready to
// use. V is the shared result type; all callers of a flight receive the
// same value, so V should be a value type or treated as immutable.
type Group[V any] struct {
	mu sync.Mutex
	m  map[string]*call[V]

	// Counters are cumulative over the Group's lifetime.
	leads     uint64 // calls that executed fn
	coalesced uint64 // calls that waited on another caller's fn
}

// call is one in-flight execution.
type call[V any] struct {
	wg       sync.WaitGroup
	val      V
	panicked any // non-nil if fn panicked; re-raised in every caller
}

// Stats is a point-in-time snapshot of a Group's counters.
type Stats struct {
	Leads     uint64 `json:"leads"`
	Coalesced uint64 `json:"coalesced"`
	InFlight  int    `json:"in_flight"`
}

// Do executes fn exactly once among all concurrent callers presenting
// the same key, returning fn's value to every caller. shared reports
// whether this caller received another caller's result. If fn panics,
// the panic propagates to every caller in the flight.
//
// The key is only retained (copied) by a leader; duplicate callers
// never allocate on the probe.
func (g *Group[V]) Do(key []byte, fn func() V) (v V, shared bool) {
	g.mu.Lock()
	if c, ok := g.m[string(key)]; ok {
		g.coalesced++
		g.mu.Unlock()
		c.wg.Wait()
		if c.panicked != nil {
			panic(c.panicked)
		}
		return c.val, true
	}
	if g.m == nil {
		g.m = make(map[string]*call[V])
	}
	c := &call[V]{}
	c.wg.Add(1)
	k := string(key) // leader pays the one copy; the map must own stable bytes
	g.m[k] = c
	g.leads++
	g.mu.Unlock()

	defer func() {
		if r := recover(); r != nil {
			c.panicked = r
		}
		// Publish before unregistering so a caller that found c always
		// sees the final value; callers arriving after the delete start
		// a fresh flight, which is correct — the result they would have
		// shared is (about to be) in the cache above us.
		c.wg.Done()
		g.mu.Lock()
		delete(g.m, k)
		g.mu.Unlock()
		if c.panicked != nil {
			panic(c.panicked)
		}
	}()

	c.val = fn()
	return c.val, false
}

// Stats returns a snapshot of the Group's counters.
func (g *Group[V]) Stats() Stats {
	g.mu.Lock()
	defer g.mu.Unlock()
	return Stats{Leads: g.leads, Coalesced: g.coalesced, InFlight: len(g.m)}
}
