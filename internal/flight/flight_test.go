package flight

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"nutriprofile/internal/memo"
)

func TestDoSequential(t *testing.T) {
	var g Group[int]
	calls := 0
	for i := 0; i < 3; i++ {
		v, shared := g.Do([]byte("k"), func() int { calls++; return calls })
		if shared {
			t.Errorf("call %d: shared=true with no concurrency", i)
		}
		if v != i+1 {
			t.Errorf("call %d: v=%d, want %d", i, v, i+1)
		}
	}
	s := g.Stats()
	if s.Leads != 3 || s.Coalesced != 0 || s.InFlight != 0 {
		t.Errorf("stats = %+v, want 3 leads, 0 coalesced, 0 in flight", s)
	}
}

// TestDoCoalesces holds one flight open behind a gate while duplicate
// callers pile on, then asserts fn ran exactly once and everyone got
// its value.
func TestDoCoalesces(t *testing.T) {
	var g Group[int]
	gate := make(chan struct{})
	var execs atomic.Int64

	const dups = 16
	var wg sync.WaitGroup
	results := make([]int, dups)
	for i := 0; i < dups; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			v, _ := g.Do([]byte("key"), func() int {
				execs.Add(1)
				<-gate
				return 42
			})
			results[i] = v
		}(i)
	}

	// Wait until one leader is registered and the rest are queued
	// behind it, then release.
	deadline := time.Now().Add(5 * time.Second)
	for {
		s := g.Stats()
		if s.Leads == 1 && s.Coalesced == dups-1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("stats never converged: %+v", s)
		}
		time.Sleep(time.Millisecond)
	}
	close(gate)
	wg.Wait()

	if n := execs.Load(); n != 1 {
		t.Errorf("fn executed %d times, want 1", n)
	}
	for i, v := range results {
		if v != 42 {
			t.Errorf("caller %d got %d, want 42", i, v)
		}
	}
	if s := g.Stats(); s.InFlight != 0 {
		t.Errorf("in-flight after drain = %d, want 0", s.InFlight)
	}
}

// TestDistinctKeysDoNotCoalesce runs two keys concurrently and asserts
// both functions execute.
func TestDistinctKeysDoNotCoalesce(t *testing.T) {
	var g Group[string]
	gate := make(chan struct{})
	var wg sync.WaitGroup
	for _, key := range []string{"a", "b"} {
		wg.Add(1)
		go func(key string) {
			defer wg.Done()
			v, shared := g.Do([]byte(key), func() string {
				<-gate
				return key
			})
			if shared {
				t.Errorf("key %q: shared=true", key)
			}
			if v != key {
				t.Errorf("key %q: got %q", key, v)
			}
		}(key)
	}
	deadline := time.Now().Add(5 * time.Second)
	for g.Stats().InFlight != 2 {
		if time.Now().After(deadline) {
			t.Fatalf("both flights never registered: %+v", g.Stats())
		}
		time.Sleep(time.Millisecond)
	}
	close(gate)
	wg.Wait()
	if s := g.Stats(); s.Leads != 2 || s.Coalesced != 0 {
		t.Errorf("stats = %+v, want 2 leads, 0 coalesced", s)
	}
}

// TestPanicPropagates asserts a leader's panic reaches both the leader
// and its followers, and that the flight is unregistered afterwards.
func TestPanicPropagates(t *testing.T) {
	var g Group[int]
	gate := make(chan struct{})
	entered := make(chan struct{})

	caught := make(chan any, 1)
	go func() {
		defer func() { caught <- recover() }()
		g.Do([]byte("boom"), func() int {
			close(entered)
			<-gate
			panic("kaboom")
		})
	}()
	<-entered
	// Queue a follower behind the leader before releasing the gate.
	follower := make(chan any, 1)
	go func() {
		defer func() { follower <- recover() }()
		g.Do([]byte("boom"), func() int { return 0 })
	}()
	deadline := time.Now().Add(5 * time.Second)
	for g.Stats().Coalesced == 0 {
		if time.Now().After(deadline) {
			t.Fatal("follower never coalesced")
		}
		time.Sleep(time.Millisecond)
	}
	close(gate)

	if r := <-caught; r != "kaboom" {
		t.Errorf("leader recovered %v, want kaboom", r)
	}
	if r := <-follower; r != "kaboom" {
		t.Errorf("follower recovered %v, want kaboom", r)
	}
	if s := g.Stats(); s.InFlight != 0 {
		t.Errorf("in-flight after panic = %d, want 0", s.InFlight)
	}
	// The group must remain usable.
	if v, _ := g.Do([]byte("boom"), func() int { return 7 }); v != 7 {
		t.Errorf("post-panic Do = %d, want 7", v)
	}
}

// TestDuplicateProbeZeroAllocs guards the no-alloc contract for
// coalescing callers: probing an occupied key must not copy it.
func TestDuplicateProbeZeroAllocs(t *testing.T) {
	var g Group[int]
	gate := make(chan struct{})
	done := make(chan struct{})
	go func() {
		defer close(done)
		g.Do([]byte("occupied"), func() int { <-gate; return 1 })
	}()
	deadline := time.Now().Add(5 * time.Second)
	for g.Stats().InFlight != 1 {
		if time.Now().After(deadline) {
			t.Fatal("leader never registered")
		}
		time.Sleep(time.Millisecond)
	}

	key := []byte("occupied")
	s := &g.shards[memo.Hash(key)&(numShards-1)]
	allocs := testing.AllocsPerRun(100, func() {
		s.mu.Lock()
		_, ok := s.m[string(key)]
		s.mu.Unlock()
		if !ok {
			t.Fatal("flight vanished")
		}
	})
	if allocs != 0 {
		t.Errorf("duplicate probe allocates %v per run, want 0", allocs)
	}
	close(gate)
	<-done
}
