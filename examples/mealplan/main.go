// Mealplan: weekly dietary analytics over multiple recipes — the
// "dietary analytics" application the paper's abstract motivates.
//
// The example estimates seven dinners, sums the per-serving profiles into
// a weekly intake, and checks it against reference daily values.
//
//	go run ./examples/mealplan
package main

import (
	"fmt"
	"log"

	"nutriprofile/internal/core"
	"nutriprofile/internal/nutrition"
	"nutriprofile/internal/report"
)

// dinner is one night's recipe.
type dinner struct {
	name        string
	servings    int
	ingredients []string
}

var week = []dinner{
	{"Monday — Spaghetti Marinara", 4, []string{
		"8 oz pasta",
		"2 cups marinara sauce",
		"2 tablespoons olive oil",
		"2 cloves garlic , minced",
		"1/4 cup parmesan cheese , grated",
	}},
	{"Tuesday — Chicken Stir-fry", 3, []string{
		"2 chicken breasts , cubed",
		"2 tablespoons soy sauce",
		"1 tablespoon sesame oil",
		"1 red bell pepper , sliced",
		"2 cups broccoli florets",
		"1 cup white rice",
	}},
	{"Wednesday — Lentil Soup", 4, []string{
		"1 cup red lentils , rinsed",
		"4 cups vegetable broth",
		"1 onion , chopped",
		"2 carrots , diced",
		"1 teaspoon ground cumin",
		"1 tablespoon olive oil",
	}},
	{"Thursday — Beef Tacos", 4, []string{
		"1 lb lean ground beef",
		"8 flour tortillas",
		"1 cup cheddar cheese , shredded",
		"1 cup salsa",
		"2 cups iceberg lettuce , shredded",
	}},
	{"Friday — Baked Salmon", 2, []string{
		"2 salmon fillets",
		"1 tablespoon olive oil",
		"1 lemon , juiced",
		"1/2 teaspoon salt",
		"1/4 teaspoon black pepper",
	}},
	{"Saturday — Vegetable Curry", 4, []string{
		"1 can coconut milk",
		"2 potatoes , cubed",
		"1 cup green peas",
		"1 tablespoon curry powder",
		"1 onion , chopped",
		"1 cup white rice",
	}},
	{"Sunday — Mushroom Omelette", 2, []string{
		"4 eggs , beaten",
		"1 cup mushrooms , sliced",
		"2 tablespoons butter",
		"1/4 cup swiss cheese , shredded",
		"1/8 teaspoon salt",
	}},
}

func main() {
	estimator := core.NewDefault()

	tb := report.NewTable("Dinner", "Mapped", "kcal/serving", "Protein g", "Fat g", "Carbs g")
	var weekly nutrition.Profile
	for _, d := range week {
		res, err := estimator.EstimateRecipe(d.ingredients, d.servings)
		if err != nil {
			log.Fatalf("mealplan: %s: %v", d.name, err)
		}
		ps := res.PerServing
		weekly = weekly.Add(ps)
		tb.AddRow(d.name, report.Pct(res.MappedFraction),
			report.F2(ps.EnergyKcal), report.F2(ps.ProteinG),
			report.F2(ps.FatG), report.F2(ps.CarbsG))
	}
	fmt.Print(tb.String())

	// One dinner serving per day — what share of each daily value does
	// the average dinner cover?
	avg := weekly.Scale(1.0 / float64(len(week)))
	fmt.Println("\nAverage dinner vs FDA daily values:")
	cmp := report.NewTable("Nutrient", "Avg dinner", "%DV")
	for _, dv := range avg.PercentDaily() {
		cmp.AddRow(dv.Name,
			fmt.Sprintf("%.1f %s", dv.Amount, dv.Unit),
			report.Pct(dv.Percent))
	}
	fmt.Print(cmp.String())
}
