// Quickstart: estimate the nutritional profile of one recipe.
//
// This is the minimal end-to-end use of the library: build the default
// estimator (seed USDA-SR database, rule-based NER), hand it the raw
// ingredient section of a recipe, and read back per-serving nutrition.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"nutriprofile/internal/core"
)

func main() {
	// The paper's running example: Piroszhki (Little Russian Pastries).
	ingredients := []string{
		"1/2 lb lean ground beef",
		"1 small onion , finely chopped",
		"1 hard-cooked egg , finely chopped",
		"1 tablespoon fresh dill weed",
		"1/2 teaspoon salt",
		"1/8 teaspoon black pepper",
		"3/4 cup butter , softened",
		"2 cups all-purpose flour",
		"1 teaspoon salt",
		"1/2 cup low-fat sour cream",
		"1 egg yolk",
		"1 tablespoon cold water",
	}
	const servings = 6

	estimator := core.NewDefault()
	result, err := estimator.EstimateRecipe(ingredients, servings)
	if err != nil {
		log.Fatalf("quickstart: %v", err)
	}

	fmt.Println("Piroszhki (Little Russian Pastries) — nutritional estimate")
	fmt.Println()
	for _, ing := range result.Ingredients {
		status := "✗ unmatched"
		if ing.Mapped {
			status = fmt.Sprintf("%.0f kcal  (%s)", ing.Profile.EnergyKcal, ing.Match.Desc)
		} else if ing.Matched {
			status = fmt.Sprintf("matched %q but unit unresolved", ing.Match.Desc)
		}
		fmt.Printf("  %-42s %s\n", ing.Phrase, status)
	}
	fmt.Printf("\nIngredients mapped: %.0f%%\n", 100*result.MappedFraction)
	fmt.Printf("\nPer serving (of %d):\n%s", servings, result.PerServing.Table())
}
