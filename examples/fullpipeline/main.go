// Fullpipeline: every component together — generate a corpus, persist it
// to CSV and read it back, train the perceptron NER on one half, build an
// estimator over the merged (SR + FAO regional) composition table with
// fuzzy matching, and produce yield-corrected per-serving profiles for
// the other half, reporting error against the corpus gold.
//
//	go run ./examples/fullpipeline
package main

import (
	"bytes"
	"fmt"
	"log"
	"math"

	"nutriprofile/internal/core"
	"nutriprofile/internal/instructions"
	"nutriprofile/internal/ner"
	"nutriprofile/internal/recipedb"
	"nutriprofile/internal/report"
	"nutriprofile/internal/units"
	"nutriprofile/internal/usda"
)

func main() {
	// 1. Generate a corpus with every noise class enabled, round-trip it
	// through the CSV interchange format (as a real deployment would).
	corpus, err := recipedb.Generate(recipedb.Config{
		NumRecipes: 600, Seed: 11, TypoRate: 0.02,
	})
	if err != nil {
		log.Fatal(err)
	}
	var buf bytes.Buffer
	if err := corpus.WriteCSV(&buf); err != nil {
		log.Fatal(err)
	}
	corpus, err = recipedb.ReadCSV(&buf)
	if err != nil {
		log.Fatal(err)
	}
	half := corpus.Len() / 2
	train := &recipedb.Corpus{Recipes: corpus.Recipes[:half]}
	test := &recipedb.Corpus{Recipes: corpus.Recipes[half:]}
	fmt.Printf("corpus: %d recipes (%d train / %d test), CSV round-tripped\n",
		corpus.Len(), half, corpus.Len()-half)

	// 2. Train the NER model on the training half's gold annotations.
	model, err := ner.Train(train.Examples(), ner.TrainConfig{Epochs: 4, Seed: 11})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("NER model trained: %d features\n", model.FeatureCount())

	// 3. Build the estimator: merged composition table, trained tagger,
	// fuzzy matching; learn unit statistics from the training half.
	estimator, err := core.New(usda.WithRegional(), model, core.Options{FuzzyMatch: true})
	if err != nil {
		log.Fatal(err)
	}
	estimator.ObserveUnits(train.Phrases())

	// 4. Estimate the test half with yield correction and score against
	// the as-cooked gold.
	var mapped, total float64
	var absErr, n float64
	for i := range test.Recipes {
		rec := &test.Recipes[i]
		servings, clean, ok := units.ParseServings(rec.ServingsText)
		if !ok || !clean {
			continue
		}
		phrases := make([]string, len(rec.Ingredients))
		for j := range rec.Ingredients {
			phrases[j] = rec.Ingredients[j].Phrase
		}
		method := instructions.InferMethod(rec.Instructions)
		res, err := estimator.EstimateRecipeCooked(phrases, servings, method)
		if err != nil {
			log.Fatal(err)
		}
		mapped += res.MappedFraction
		total++
		if res.MappedFraction == 1 {
			absErr += math.Abs(res.PerServing.EnergyKcal - rec.GoldCookedPerServing().EnergyKcal)
			n++
		}
	}
	fmt.Printf("test half: mean mapped %s over %.0f clean-servings recipes\n",
		report.Pct(mapped/total), total)
	fmt.Printf("fully-mapped per-serving error vs as-cooked gold: %.1f kcal over %.0f recipes\n",
		absErr/n, n)
}
