// Matcher: description-matching diagnostics — shows how the §II-B
// heuristics decide, side by side with the vanilla-Jaccard baseline.
//
// For each probe ingredient the example prints the top-3 candidates under
// the Modified Jaccard Index with their scores, priorities and matched
// words, and the choice the vanilla index would have made instead.
//
//	go run ./examples/matcher
package main

import (
	"fmt"

	"nutriprofile/internal/match"
	"nutriprofile/internal/usda"
)

func main() {
	db := usda.Seed()
	opts := match.DefaultOptions()
	opts.ExplainMatched = true // we print Result.Matched below
	modified := match.New(db, opts)
	vanillaOpts := opts
	vanillaOpts.Metric = match.VanillaJaccard
	vanilla := match.New(db, vanillaOpts)

	probes := []match.Query{
		{Name: "unsalted butter"},
		{Name: "skim milk"},
		{Name: "red lentils"},
		{Name: "egg whites"},
		{Name: "whole eggs"},
		{Name: "apple"},
		{Name: "coriander", State: "ground"},
		{Name: "cayenne pepper", State: "ground"},
		{Name: "fava beans"},
		{Name: "sesame seeds"},
		{Name: "tomato paste"},
		{Name: "garam masala"},
	}

	for _, q := range probes {
		fmt.Printf("ingredient: %q", q.Name)
		if q.State != "" {
			fmt.Printf(" (state: %q)", q.State)
		}
		fmt.Println()

		top := modified.Rank(q, 3)
		if len(top) == 0 {
			fmt.Println("  → no match (unmappable, like the paper's 'garam masala')")
			fmt.Println()
			continue
		}
		for i, r := range top {
			marker := "   "
			if i == 0 {
				marker = " → "
			}
			fmt.Printf("%sJ*=%.3f prio=%-3d %-70s matched=%v\n",
				marker, r.Score, r.Priority, r.Desc, r.Matched)
		}
		if v, ok := vanilla.Match(q); ok && v.NDB != top[0].NDB {
			fmt.Printf("   vanilla JI would pick: %s  (the §II-B(e) bias)\n", v.Desc)
		}
		fmt.Println()
	}
}
