// Cuisinecompare: per-cuisine nutritional analytics over a generated
// corpus — the "food recommendation systems" angle of the paper's
// introduction, at corpus scale.
//
// The example generates a RecipeDB-style corpus spanning 26 cuisines,
// estimates every recipe, and compares cuisines by median per-serving
// energy and by how completely their recipes map (regional ingredients
// missing from the US-centric composition table lower the mapping rate,
// exactly as §III discusses for 'garam masala').
//
//	go run ./examples/cuisinecompare
package main

import (
	"fmt"
	"log"
	"sort"

	"nutriprofile/internal/core"
	"nutriprofile/internal/recipedb"
	"nutriprofile/internal/report"
)

func main() {
	corpus, err := recipedb.Generate(recipedb.Config{NumRecipes: 3000, Seed: 7})
	if err != nil {
		log.Fatalf("cuisinecompare: %v", err)
	}
	estimator := core.NewDefault()
	estimator.ObserveUnits(corpus.Phrases())

	type stats struct {
		kcals  []float64
		mapped []float64
	}
	byCuisine := map[string]*stats{}
	for i := range corpus.Recipes {
		rec := &corpus.Recipes[i]
		phrases := make([]string, len(rec.Ingredients))
		for j := range rec.Ingredients {
			phrases[j] = rec.Ingredients[j].Phrase
		}
		res, err := estimator.EstimateRecipe(phrases, rec.Servings)
		if err != nil {
			log.Fatalf("cuisinecompare: recipe %d: %v", rec.ID, err)
		}
		s := byCuisine[rec.Cuisine]
		if s == nil {
			s = &stats{}
			byCuisine[rec.Cuisine] = s
		}
		s.kcals = append(s.kcals, res.PerServing.EnergyKcal)
		s.mapped = append(s.mapped, res.MappedFraction)
	}

	names := make([]string, 0, len(byCuisine))
	for name := range byCuisine {
		names = append(names, name)
	}
	sort.Slice(names, func(i, j int) bool {
		return median(byCuisine[names[i]].kcals) > median(byCuisine[names[j]].kcals)
	})

	tb := report.NewTable("Cuisine", "Recipes", "Median kcal/serving", "Mean mapped")
	for _, name := range names {
		s := byCuisine[name]
		tb.AddRow(name, fmt.Sprint(len(s.kcals)),
			report.F2(median(s.kcals)), report.Pct(mean(s.mapped)))
	}
	fmt.Print(tb.String())
	fmt.Println("\nNote the lower mapping rates of the non-Western cuisines: their")
	fmt.Println("region-specific ingredients (garam masala, paneer, …) are absent from")
	fmt.Println("the US-centric composition table, the coverage gap §III describes.")
}

func median(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	if len(s)%2 == 1 {
		return s[len(s)/2]
	}
	return (s[len(s)/2-1] + s[len(s)/2]) / 2
}

func mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sum := 0.0
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}
