module nutriprofile

go 1.22
