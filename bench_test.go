// Package bench is the benchmark harness: one benchmark per table and
// figure of the paper (see DESIGN.md §4). Each benchmark runs the same
// experiment implementation cmd/experiments prints, at a reduced default
// scale, and reports the reproduced headline metric through
// b.ReportMetric so `go test -bench=. -benchmem` regenerates the paper's
// numbers alongside the timings. cmd/experiments runs the identical code
// at full scale.
package bench

import (
	"testing"

	"nutriprofile/internal/core"
	"nutriprofile/internal/experiments"
	"nutriprofile/internal/match"
	"nutriprofile/internal/ner"
	"nutriprofile/internal/pipeline"
	"nutriprofile/internal/recipedb"
	"nutriprofile/internal/textutil"
	"nutriprofile/internal/usda"
)

// benchParams is the reduced scale used inside benchmarks; large enough
// for the distributions to stabilize, small enough that the whole suite
// runs in seconds.
func benchParams() experiments.Params {
	p := experiments.Defaults()
	p.Recipes = 1500
	p.TrainPhrases = 1200
	p.TestPhrases = 400
	p.Folds = 3
	return p
}

// BenchmarkTableI_NER times the Table I extraction (NER over the twelve
// Piroszhki phrases).
func BenchmarkTableI_NER(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r := experiments.TableI(nil)
		if len(r.Rows) != 12 {
			b.Fatalf("Table I rows = %d", len(r.Rows))
		}
	}
}

// BenchmarkTableII_Descriptions verifies and times the Table II
// description inventory check.
func BenchmarkTableII_Descriptions(b *testing.B) {
	db := usda.Seed()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r := experiments.TableII(db)
		if len(r.Missing) != 0 {
			b.Fatalf("missing descriptions: %v", r.Missing)
		}
	}
}

// BenchmarkTableIII_ModifiedVsVanilla regenerates the Table III
// comparison and reports the corpus divergence rate (paper: 227/1000 =
// 22.7%).
func BenchmarkTableIII_ModifiedVsVanilla(b *testing.B) {
	p := benchParams()
	var rate float64
	for i := 0; i < b.N; i++ {
		r, err := experiments.TableIII(p)
		if err != nil {
			b.Fatal(err)
		}
		rate = r.Divergence.Rate
	}
	b.ReportMetric(100*rate, "divergence_%")
}

// BenchmarkTableIV_UnitRelations regenerates the butter unit table and
// reports the derived teaspoon calories (paper's reference: ≈35 kcal).
func BenchmarkTableIV_UnitRelations(b *testing.B) {
	var kcal float64
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r, err := experiments.TableIV()
		if err != nil {
			b.Fatal(err)
		}
		kcal = r.TeaspoonKcal
	}
	b.ReportMetric(kcal, "tsp_butter_kcal")
}

// BenchmarkFig2_PercentMapping regenerates the Fig. 2 mapping histogram
// and reports the mean mapped fraction.
func BenchmarkFig2_PercentMapping(b *testing.B) {
	p := benchParams()
	var mean float64
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig2(p)
		if err != nil {
			b.Fatal(err)
		}
		mean = r.Mapping.MeanMapped
	}
	b.ReportMetric(100*mean, "mean_mapped_%")
}

// BenchmarkNER_F1 runs the §II-A protocol (POS clustering, balanced
// selection, k-fold CV) and reports the cross-validated micro-F1
// (paper: 0.95).
func BenchmarkNER_F1(b *testing.B) {
	p := benchParams()
	var f1 float64
	for i := 0; i < b.N; i++ {
		r, err := experiments.NERF1(p)
		if err != nil {
			b.Fatal(err)
		}
		f1 = r.CV.MeanMicroF1
	}
	b.ReportMetric(f1, "micro_F1")
}

// BenchmarkMatchRate reproduces the §III unique-ingredient match rate
// (paper: 94.49%).
func BenchmarkMatchRate(b *testing.B) {
	p := benchParams()
	var rate float64
	for i := 0; i < b.N; i++ {
		r, err := experiments.MatchRateExperiment(p)
		if err != nil {
			b.Fatal(err)
		}
		rate = r.Rate.Rate
	}
	b.ReportMetric(100*rate, "match_rate_%")
}

// BenchmarkMatchAccuracy reproduces the §III top-N accuracy figure
// (paper: 71.6% on the 5000 most frequent).
func BenchmarkMatchAccuracy(b *testing.B) {
	p := benchParams()
	var acc float64
	for i := 0; i < b.N; i++ {
		r, err := experiments.MatchAccuracyExperiment(p, 5000)
		if err != nil {
			b.Fatal(err)
		}
		acc = r.Accuracy.Accuracy
	}
	b.ReportMetric(100*acc, "accuracy_%")
}

// BenchmarkCalorieError reproduces the §III per-serving calorie error
// (paper: 36.42 kcal over 2,482 fully-mapped recipes).
func BenchmarkCalorieError(b *testing.B) {
	p := benchParams()
	var mae, med float64
	for i := 0; i < b.N; i++ {
		r, err := experiments.CalorieExperiment(p)
		if err != nil {
			b.Fatal(err)
		}
		mae, med = r.Result.MeanAbsError, r.Result.MedianError
	}
	b.ReportMetric(mae, "mean_abs_kcal")
	b.ReportMetric(med, "median_kcal")
}

// BenchmarkAblation_Matcher times the §II-B heuristic ablation sweep.
func BenchmarkAblation_Matcher(b *testing.B) {
	p := benchParams()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.MatcherAblation(p); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblation_UnitChain times the §II-C fallback-chain ablation.
func BenchmarkAblation_UnitChain(b *testing.B) {
	p := benchParams()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.UnitChainAblation(p); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkYieldCorrection runs the cooking-yield extension experiment
// (paper §I's Bognár remark) and reports the error with and without the
// correction.
func BenchmarkYieldCorrection(b *testing.B) {
	p := benchParams()
	var with, without float64
	for i := 0; i < b.N; i++ {
		r, err := experiments.YieldExperiment(p)
		if err != nil {
			b.Fatal(err)
		}
		with, without = r.CorrectedMAE, r.UncorrectedMAE
	}
	b.ReportMetric(without, "uncorrected_kcal")
	b.ReportMetric(with, "corrected_kcal")
}

// BenchmarkFAOIncorporation runs the multi-database extension experiment
// (paper §III's FAO remark) and reports match rates with and without the
// regional table.
func BenchmarkFAOIncorporation(b *testing.B) {
	p := benchParams()
	var primary, merged float64
	for i := 0; i < b.N; i++ {
		r, err := experiments.FAOExperiment(p)
		if err != nil {
			b.Fatal(err)
		}
		primary, merged = r.PrimaryRate, r.MergedRate
	}
	b.ReportMetric(100*primary, "primary_rate_%")
	b.ReportMetric(100*merged, "merged_rate_%")
}

// BenchmarkTypoTolerance runs the fuzzy-matching extension experiment and
// reports the match rate recovered on a typo-corrupted corpus.
func BenchmarkTypoTolerance(b *testing.B) {
	p := benchParams()
	var exact, fuzzy float64
	for i := 0; i < b.N; i++ {
		r, err := experiments.TypoExperiment(p)
		if err != nil {
			b.Fatal(err)
		}
		exact, fuzzy = r.ExactRate, r.FuzzyRate
	}
	b.ReportMetric(100*exact, "exact_rate_%")
	b.ReportMetric(100*fuzzy, "fuzzy_rate_%")
}

// Component micro-benchmarks: the hot paths behind the experiments.

func BenchmarkPipeline_SingleIngredient(b *testing.B) {
	e := core.NewDefault()
	phrases := []string{
		"2 cups all-purpose flour",
		"1 small onion , finely chopped",
		"1/2 lb lean ground beef",
		"1 teaspoon butter",
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.EstimateIngredient(phrases[i%len(phrases)])
	}
}

func BenchmarkMatcher_SeedDB(b *testing.B) {
	m := match.NewDefault(usda.Seed())
	q := match.Query{Name: "low fat sour cream"}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Match(q)
	}
}

func BenchmarkMatcher_SRScaleDB(b *testing.B) {
	// Real SR has ~7,800 foods; Merged pads the seed to that scale.
	m := match.NewDefault(usda.Merged(7500, 3))
	q := match.Query{Name: "golden harvest beans"}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Match(q)
	}
}

func BenchmarkNER_RuleTagger(b *testing.B) {
	var rt ner.RuleTagger
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		ner.Extract(rt, "3/4 cup butter or 3/4 cup margarine , softened")
	}
}

// BenchmarkTagPhrase measures one phrase through the NER decode path —
// the Viterbi hot loop the scratch arena rebuilt — for both the rule
// tagger and a perceptron model, allocating vs scratch variants.
func BenchmarkTagPhrase(b *testing.B) {
	phrases := batchCorpus(b, 50)
	var rt ner.RuleTagger
	examples := make([]ner.Example, 0, 200)
	tokenized := make([][]string, len(phrases))
	for i, p := range phrases {
		tokenized[i] = textutil.Tokenize(p)
		if len(examples) < 200 && len(tokenized[i]) > 0 {
			examples = append(examples, ner.Example{Tokens: tokenized[i], Labels: rt.Tag(tokenized[i])})
		}
	}
	model, err := ner.Train(examples, ner.TrainConfig{Epochs: 2, Seed: 42})
	if err != nil {
		b.Fatal(err)
	}
	b.Run("rule_alloc", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			rt.Tag(tokenized[i%len(tokenized)])
		}
	})
	b.Run("rule_scratch", func(b *testing.B) {
		var sc ner.Scratch
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			rt.TagScratch(tokenized[i%len(tokenized)], &sc)
		}
	})
	b.Run("model_alloc", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			model.Tag(tokenized[i%len(tokenized)])
		}
	})
	b.Run("model_scratch", func(b *testing.B) {
		var sc ner.Scratch
		model.TagScratch(tokenized[0], &sc) // compile outside the loop
		b.ResetTimer()
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			model.TagScratch(tokenized[i%len(tokenized)], &sc)
		}
	})
}

// BenchmarkPipelineScratch measures the whole NLP front-end (tokenize →
// POS-tag → lemma → NER → unit lookups → cache keys) on one warm
// Scratch — the per-phrase cost a batch worker pays on a cache miss.
// The allocs/op column is the tentpole's budget: 0 on warm phrases.
func BenchmarkPipelineScratch(b *testing.B) {
	phrases := batchCorpus(b, 50)
	var rt ner.RuleTagger
	sc := pipeline.Get()
	defer pipeline.Put(sc)
	for _, p := range phrases {
		sc.Run(rt, p)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p := phrases[i%len(phrases)]
		sc.Tokenize(p)
		sc.Tag()
		sc.Lemmas()
		ex := sc.Extract(rt)
		for j := range sc.Tokens() {
			sc.UnitFor(j)
		}
		sc.PhraseKey()
		sc.JoinKey(ex.Name, ex.State, ex.Temp, ex.DryFresh)
	}
}

// batchCorpus flattens a generated corpus to its phrase list — the
// repeated-ingredient workload (salt, butter, olive oil recur across
// nearly every recipe) the memo cache and worker pool target.
func batchCorpus(b *testing.B, recipes int) []string {
	b.Helper()
	corpus, err := recipedb.Generate(recipedb.Config{NumRecipes: recipes, Seed: 42})
	if err != nil {
		b.Fatal(err)
	}
	return corpus.Phrases()
}

// BenchmarkEstimateBatch measures the concurrent batch-estimation layer
// against the sequential baseline on a repeated-ingredient corpus. The
// acceptance bar (EXPERIMENTS.md) is ≥ 2× throughput for the cached
// variants over `sequential`; `phrases/s` is the comparable metric.
func BenchmarkEstimateBatch(b *testing.B) {
	phrases := batchCorpus(b, 400)
	variants := []struct {
		name      string
		cacheSize int
		workers   int
		warm      bool
	}{
		{"sequential", 0, 1, false},
		{"parallel", 0, 0, false},
		{"cached_warm", 1 << 15, 1, true},
		{"parallel_cached_warm", 1 << 15, 0, true},
	}
	for _, v := range variants {
		b.Run(v.name, func(b *testing.B) {
			e, err := core.New(usda.Seed(), nil, core.Options{CacheSize: v.cacheSize})
			if err != nil {
				b.Fatal(err)
			}
			if v.warm {
				e.EstimateBatchWorkers(phrases, v.workers)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				out := e.EstimateBatchWorkers(phrases, v.workers)
				if len(out) != len(phrases) {
					b.Fatalf("len = %d, want %d", len(out), len(phrases))
				}
			}
			b.ReportMetric(float64(len(phrases))*float64(b.N)/b.Elapsed().Seconds(), "phrases/s")
		})
	}
}

// BenchmarkEstimateRecipes measures the recipe-level pool end to end,
// the cmd/experiments serving path.
func BenchmarkEstimateRecipes(b *testing.B) {
	corpus, err := recipedb.Generate(recipedb.Config{NumRecipes: 300, Seed: 42})
	if err != nil {
		b.Fatal(err)
	}
	inputs := make([]core.RecipeInput, len(corpus.Recipes))
	for i := range corpus.Recipes {
		rec := &corpus.Recipes[i]
		phrases := make([]string, len(rec.Ingredients))
		for j := range rec.Ingredients {
			phrases[j] = rec.Ingredients[j].Phrase
		}
		inputs[i] = core.RecipeInput{Phrases: phrases, Servings: rec.Servings}
	}
	for _, v := range []struct {
		name      string
		cacheSize int
		workers   int
	}{
		{"sequential", 0, 1},
		{"parallel_cached", 1 << 15, 0},
	} {
		b.Run(v.name, func(b *testing.B) {
			e, err := core.New(usda.Seed(), nil, core.Options{CacheSize: v.cacheSize})
			if err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				out := e.EstimateRecipes(inputs, v.workers)
				if len(out) != len(inputs) {
					b.Fatalf("len = %d, want %d", len(out), len(inputs))
				}
			}
			b.ReportMetric(float64(len(inputs))*float64(b.N)/b.Elapsed().Seconds(), "recipes/s")
		})
	}
}
