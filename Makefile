# Standard targets for the nutriprofile reproduction.

GO ?= go

.PHONY: all build vet test race bench experiments fuzz clean ci fmt-check bench-smoke bench-json

all: build vet test

# Mirror of .github/workflows/ci.yml: what CI runs, runnable locally.
ci: fmt-check build vet test race

fmt-check:
	@unformatted=$$(gofmt -l .); \
	if [ -n "$$unformatted" ]; then \
		echo "gofmt required for:"; echo "$$unformatted"; exit 1; \
	fi

# Mirror of the nightly bench smoke: one iteration of every benchmark.
bench-smoke:
	$(GO) test -bench=. -benchtime=1x ./...

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

bench:
	$(GO) test -bench=. -benchmem ./...

# Measure the perf-gated benchmarks (matching + batch estimation) and
# emit the BENCH_match.json artifact the nightly workflow archives.
bench-json:
	$(GO) test -run xxx -bench 'BenchmarkMatchName|BenchmarkRank|BenchmarkMatchSeed|BenchmarkMatchLargeDB|BenchmarkEstimateBatch' \
		-benchmem -benchtime=1s ./internal/match/ . | tee bench_match.txt
	$(GO) run ./cmd/benchjson -in bench_match.txt -o BENCH_match.json
	@rm -f bench_match.txt

# Regenerate every table and figure at full harness scale.
experiments:
	$(GO) run ./cmd/experiments -run all

# Short fuzzing pass over every parser surface.
fuzz:
	$(GO) test -fuzz FuzzParseQuantity -fuzztime 15s ./internal/units/
	$(GO) test -fuzz FuzzParseServings -fuzztime 15s ./internal/units/
	$(GO) test -fuzz FuzzNormalize -fuzztime 15s ./internal/units/
	$(GO) test -fuzz FuzzTokenize -fuzztime 15s ./internal/textutil/
	$(GO) test -fuzz FuzzExpandFractions -fuzztime 15s ./internal/textutil/
	$(GO) test -fuzz FuzzReadCSV -fuzztime 15s ./internal/recipedb/

clean:
	$(GO) clean ./...
	rm -rf internal/*/testdata/fuzz
