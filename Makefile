# Standard targets for the nutriprofile reproduction.

GO ?= go

.PHONY: all build vet test race bench experiments fuzz clean

all: build vet test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

bench:
	$(GO) test -bench=. -benchmem ./...

# Regenerate every table and figure at full harness scale.
experiments:
	$(GO) run ./cmd/experiments -run all

# Short fuzzing pass over every parser surface.
fuzz:
	$(GO) test -fuzz FuzzParseQuantity -fuzztime 15s ./internal/units/
	$(GO) test -fuzz FuzzParseServings -fuzztime 15s ./internal/units/
	$(GO) test -fuzz FuzzNormalize -fuzztime 15s ./internal/units/
	$(GO) test -fuzz FuzzTokenize -fuzztime 15s ./internal/textutil/
	$(GO) test -fuzz FuzzExpandFractions -fuzztime 15s ./internal/textutil/
	$(GO) test -fuzz FuzzReadCSV -fuzztime 15s ./internal/recipedb/

clean:
	$(GO) clean ./...
	rm -rf internal/*/testdata/fuzz
