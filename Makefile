# Standard targets for the nutriprofile reproduction.

GO ?= go

.PHONY: all build vet test race bench experiments fuzz clean ci fmt-check bench-smoke bench-json cover-check serve-smoke load-smoke load-bench

all: build vet test

# Mirror of .github/workflows/ci.yml: what CI runs, runnable locally.
ci: fmt-check build vet test race cover-check

fmt-check:
	@unformatted=$$(gofmt -l .); \
	if [ -n "$$unformatted" ]; then \
		echo "gofmt required for:"; echo "$$unformatted"; exit 1; \
	fi

# Mirror of the nightly bench smoke: one iteration of every benchmark.
bench-smoke:
	$(GO) test -bench=. -benchtime=1x ./...

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

bench:
	$(GO) test -bench=. -benchmem ./...

# Measure the perf-gated benchmarks (matching, batch estimation, the
# pooled NLP front-end, and the serving hot path) and emit the
# BENCH_match.json artifact the nightly workflow archives. The parallel
# batch benchmarks also run at -cpu 1,4,8 so the artifact records the
# multi-core scaling curve; benchfmt keys entries by (name, procs) and
# derives each series' parallel efficiency ns1/(N·nsN) into the report.
# BenchmarkRankCold / BenchmarkRankLongPostings (spelled explicitly
# below, though the BenchmarkRank substring already matches them) pin
# the pruned-vs-exhaustive ranking engines at seed and SR26 scale —
# the speedup EXPERIMENTS.md quotes is read off this artifact.
bench-json:
	$(GO) test -run xxx -bench 'BenchmarkMatchName|BenchmarkRank|BenchmarkRankCold|BenchmarkRankLongPostings|BenchmarkMatchSeed|BenchmarkMatchLargeDB|BenchmarkEstimateBatch/^(sequential|cached_warm)$$|BenchmarkTagPhrase|BenchmarkPipelineScratch|BenchmarkServeEstimate|BenchmarkServeRecipe' \
		-benchmem -benchtime=1s ./internal/match/ ./internal/server/ . | tee bench_match.txt
	$(GO) test -run xxx -bench 'BenchmarkLoadBaked|BenchmarkLoadParse' \
		-benchmem -benchtime=1s ./internal/usda/bake/ | tee -a bench_match.txt
	$(GO) test -run xxx -bench 'BenchmarkEstimateBatch/^(parallel|parallel_cached_warm)$$' -cpu 1,4,8 \
		-benchmem -benchtime=1s . | tee -a bench_match.txt
	$(GO) test -run xxx -bench 'BenchmarkMemoZipf|BenchmarkMemoGetHit' \
		-benchmem -benchtime=1s ./internal/memo/ | tee -a bench_match.txt
	$(GO) run ./cmd/benchjson -in bench_match.txt -o BENCH_match.json
	@rm -f bench_match.txt

# Regenerate every table and figure at full harness scale.
experiments:
	$(GO) run ./cmd/experiments -run all

# Short fuzzing pass over every parser surface, including the HTTP
# request decoders (arbitrary bodies through the full serving path).
fuzz:
	$(GO) test -fuzz FuzzParseQuantity -fuzztime 15s ./internal/units/
	$(GO) test -fuzz FuzzParseServings -fuzztime 15s ./internal/units/
	$(GO) test -fuzz FuzzNormalize -fuzztime 15s ./internal/units/
	$(GO) test -fuzz FuzzTokenize -fuzztime 15s ./internal/textutil/
	$(GO) test -fuzz FuzzExpandFractions -fuzztime 15s ./internal/textutil/
	$(GO) test -fuzz FuzzPipelineScratch -fuzztime 15s ./internal/pipeline/
	$(GO) test -fuzz FuzzReadCSV -fuzztime 15s ./internal/recipedb/
	$(GO) test -fuzz FuzzMemoAdmission -fuzztime 15s ./internal/memo/
	$(GO) test -fuzz FuzzPruneDifferential -fuzztime 15s ./internal/match/
	$(GO) test -fuzz FuzzParse -fuzztime 15s ./internal/usda/sr/
	$(GO) test -fuzz FuzzLoad -fuzztime 15s ./internal/usda/bake/
	$(GO) test -fuzz FuzzEstimateHandler -fuzztime 15s -run xxx ./internal/server/
	$(GO) test -fuzz FuzzRecipeHandler -fuzztime 15s -run xxx ./internal/server/
	$(GO) test -fuzz FuzzBatchHandler -fuzztime 15s -run xxx ./internal/server/

# Per-package coverage floors for the packages whose regressions hurt
# most in production. The serving layer carries the pooled codec — every
# escape path and error envelope must stay exercised — so its floor is
# higher than the core pipeline's.
SERVER_COVER_FLOOR ?= 85
CORE_COVER_FLOOR ?= 60
METRICS_COVER_FLOOR ?= 80
cover-check:
	@set -e; check() { \
		out=$$($(GO) test -cover $$1); echo "$$out"; \
		pct=$$(echo "$$out" | awk '{for(i=1;i<=NF;i++) if($$i=="coverage:"){gsub("%","",$$(i+1)); print $$(i+1)}}'); \
		if [ -z "$$pct" ]; then echo "cover-check: no coverage reported for $$1" >&2; exit 1; fi; \
		if ! awk -v p="$$pct" -v f="$$2" 'BEGIN{exit !(p+0 >= f+0)}'; then \
			echo "cover-check: $$1 coverage $$pct% below floor $$2%" >&2; exit 1; \
		fi; \
	}; \
	check ./internal/server $(SERVER_COVER_FLOOR); \
	check ./internal/core $(CORE_COVER_FLOOR); \
	check ./internal/metrics $(METRICS_COVER_FLOOR); \
	echo "cover-check: all floors met (server >= $(SERVER_COVER_FLOOR)%, core >= $(CORE_COVER_FLOOR)%, metrics >= $(METRICS_COVER_FLOOR)%)"

# Bake two fixture images, boot nutriserve -db on the first, curl all
# four routes, hot-swap to the second via /admin/reload, verify
# /v1/stats reports the new snapshot, then check SIGTERM drains
# cleanly. The end-to-end smoke CI runs on every push.
SMOKE_ADDR ?= 127.0.0.1:18080
serve-smoke:
	@set -e; \
	$(GO) build -o /tmp/nutriserve ./cmd/nutriserve; \
	$(GO) build -o /tmp/dbbake ./cmd/dbbake; \
	/tmp/dbbake -o /tmp/smoke-a.img >/dev/null; \
	/tmp/dbbake -o /tmp/smoke-b.img -synth 50 >/dev/null; \
	/tmp/nutriserve -addr $(SMOKE_ADDR) -db /tmp/smoke-a.img -quiet & pid=$$!; \
	trap 'kill $$pid 2>/dev/null || true' EXIT; \
	ok=0; for i in $$(seq 1 50); do \
		if curl -fsS http://$(SMOKE_ADDR)/v1/healthz >/dev/null 2>&1; then ok=1; break; fi; sleep 0.1; \
	done; \
	[ "$$ok" = 1 ] || { echo "serve-smoke: server never became healthy" >&2; exit 1; }; \
	curl -fsS http://$(SMOKE_ADDR)/v1/healthz; echo; \
	curl -fsS -X POST -H 'Content-Type: application/json' \
		-d '{"phrase":"2 cups all-purpose flour"}' http://$(SMOKE_ADDR)/v1/estimate >/dev/null; \
	curl -fsS -X POST -H 'Content-Type: application/json' \
		-d '{"ingredients":["2 cups flour","1 cup sugar","2 eggs"],"servings":4,"method":"baked"}' \
		http://$(SMOKE_ADDR)/v1/recipe >/dev/null; \
	curl -fsS http://$(SMOKE_ADDR)/v1/stats >/dev/null; \
	curl -fsS -X POST -H 'Content-Type: application/json' \
		-d '{"path":"/tmp/smoke-b.img"}' http://$(SMOKE_ADDR)/admin/reload; echo; \
	curl -fsS http://$(SMOKE_ADDR)/v1/stats | grep -q '"version":2' || \
		{ echo "serve-smoke: stats does not report reloaded snapshot v2" >&2; exit 1; }; \
	curl -fsS -X POST -H 'Content-Type: application/json' \
		-d '{"phrase":"2 cups all-purpose flour"}' http://$(SMOKE_ADDR)/v1/estimate >/dev/null; \
	kill -TERM $$pid; wait $$pid; \
	trap - EXIT; \
	rm -f /tmp/smoke-a.img /tmp/smoke-b.img; \
	echo "serve-smoke: all routes OK, hot reload v1->v2 OK, SIGTERM drained cleanly"

# Boot nutriserve and drive a small generated corpus through streaming
# /v1/batch with interactive traffic mixed in, verifying zero lost/torn
# lines, the /metrics counter deltas, and lenient SLO floors. Runs in CI
# on every push; load-bench below is the paper-scale nightly version.
LOAD_ADDR ?= 127.0.0.1:18081
load-smoke:
	@set -e; \
	$(GO) build -o /tmp/nutriserve ./cmd/nutriserve; \
	$(GO) build -o /tmp/loadgen ./cmd/loadgen; \
	/tmp/nutriserve -addr $(LOAD_ADDR) -quiet & pid=$$!; \
	trap 'kill $$pid 2>/dev/null || true' EXIT; \
	ok=0; for i in $$(seq 1 50); do \
		if curl -fsS http://$(LOAD_ADDR)/v1/healthz >/dev/null 2>&1; then ok=1; break; fi; sleep 0.1; \
	done; \
	[ "$$ok" = 1 ] || { echo "load-smoke: server never became healthy" >&2; exit 1; }; \
	/tmp/loadgen -addr http://$(LOAD_ADDR) -recipes 500 -bulk 2 -interactive 4 \
		-slo-p99 2s -min-rps 200 -max-shed-frac 0.5 -metrics-check; \
	/tmp/loadgen -addr http://$(LOAD_ADDR) -recipes 500 -bulk 1 -interactive 4 \
		-zipf 1.1 -min-hit-ratio 0.25 -max-shed-frac 0.5; \
	/tmp/loadgen -addr http://$(LOAD_ADDR) -recipes 500 -bulk 2 -interactive 2 \
		-cold -min-rps 100 -max-shed-frac 0.5; \
	kill -TERM $$pid; wait $$pid; \
	trap - EXIT; \
	echo "load-smoke: OK"

# Nightly sustained-load gate: a larger corpus with production-shaped
# floors. The floors are far below the ~13k recipes/s a single dev core
# sustains so shared-runner noise cannot flake the job; a regression
# that halves throughput still trips them.
load-bench:
	@set -e; \
	$(GO) build -o /tmp/nutriserve ./cmd/nutriserve; \
	$(GO) build -o /tmp/loadgen ./cmd/loadgen; \
	/tmp/nutriserve -addr $(LOAD_ADDR) -quiet & pid=$$!; \
	trap 'kill $$pid 2>/dev/null || true' EXIT; \
	ok=0; for i in $$(seq 1 50); do \
		if curl -fsS http://$(LOAD_ADDR)/v1/healthz >/dev/null 2>&1; then ok=1; break; fi; sleep 0.1; \
	done; \
	[ "$$ok" = 1 ] || { echo "load-bench: server never became healthy" >&2; exit 1; }; \
	/tmp/loadgen -addr http://$(LOAD_ADDR) -recipes 30000 -bulk 4 -interactive 8 \
		-slo-p99 500ms -min-rps 2000 -max-shed-frac 0.2 -metrics-check; \
	kill -TERM $$pid; wait $$pid; \
	trap - EXIT; \
	echo "load-bench: OK"

clean:
	$(GO) clean ./...
	rm -rf internal/*/testdata/fuzz
