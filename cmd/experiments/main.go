// Command experiments regenerates every table and figure of the paper's
// evaluation (see DESIGN.md §4 for the experiment index).
//
// Usage:
//
//	experiments                       # run everything at default scale
//	experiments -run tableIII,fig2    # a subset
//	experiments -recipes 118071       # paper-scale corpus
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"nutriprofile/internal/experiments"
)

func main() {
	run := flag.String("run", "all",
		"comma-separated experiments: tableI,tableII,tableIII,tableIV,fig2,nerf1,matchrate,matchacc,calorie,ablation,units,yield,fao,typo")
	recipes := flag.Int("recipes", 0, "corpus size (default 20000; paper scale is 118071)")
	seed := flag.Int64("seed", 0, "corpus/training seed (default 42)")
	workers := flag.Int("workers", 0, "estimation worker pool size (default: one per CPU; results are identical for any count)")
	cache := flag.Int("cache", 0, "estimator memo-cache entries (default 32768; negative disables)")
	flag.Parse()

	p := experiments.Defaults()
	if *recipes > 0 {
		p.Recipes = *recipes
	}
	if *seed != 0 {
		p.Seed = *seed
	}
	p.Workers = *workers
	p.CacheSize = *cache

	want := map[string]bool{}
	for _, name := range strings.Split(*run, ",") {
		want[strings.TrimSpace(strings.ToLower(name))] = true
	}
	all := want["all"]
	sel := func(name string) bool { return all || want[name] }
	fail := func(name string, err error) {
		fmt.Fprintf(os.Stderr, "experiments: %s: %v\n", name, err)
		os.Exit(1)
	}

	if sel("tablei") {
		fmt.Println(experiments.TableI(nil))
	}
	if sel("tableii") {
		fmt.Println(experiments.TableII(nil))
	}
	if sel("tableiii") {
		r, err := experiments.TableIII(p)
		if err != nil {
			fail("tableIII", err)
		}
		fmt.Println(r)
	}
	if sel("tableiv") {
		r, err := experiments.TableIV()
		if err != nil {
			fail("tableIV", err)
		}
		fmt.Println(r)
	}
	if sel("fig2") {
		r, err := experiments.Fig2(p)
		if err != nil {
			fail("fig2", err)
		}
		fmt.Println(r)
	}
	if sel("nerf1") {
		r, err := experiments.NERF1(p)
		if err != nil {
			fail("nerf1", err)
		}
		fmt.Println(r)
	}
	if sel("matchrate") {
		r, err := experiments.MatchRateExperiment(p)
		if err != nil {
			fail("matchrate", err)
		}
		fmt.Println(r)
	}
	if sel("matchacc") {
		r, err := experiments.MatchAccuracyExperiment(p, 5000)
		if err != nil {
			fail("matchacc", err)
		}
		fmt.Println(r)
	}
	if sel("calorie") {
		r, err := experiments.CalorieExperiment(p)
		if err != nil {
			fail("calorie", err)
		}
		fmt.Println(r)
	}
	if sel("ablation") {
		r, err := experiments.MatcherAblation(p)
		if err != nil {
			fail("ablation(matcher)", err)
		}
		fmt.Println("Matcher heuristics (§II-B):")
		fmt.Println(r)
		r2, err := experiments.UnitChainAblation(p)
		if err != nil {
			fail("ablation(units)", err)
		}
		fmt.Println("Unit-resolution chain (§II-C):")
		fmt.Println(r2)
	}
	if sel("yield") {
		r, err := experiments.YieldExperiment(p)
		if err != nil {
			fail("yield", err)
		}
		fmt.Println(r)
	}
	if sel("fao") {
		r, err := experiments.FAOExperiment(p)
		if err != nil {
			fail("fao", err)
		}
		fmt.Println(r)
	}
	if sel("typo") {
		r, err := experiments.TypoExperiment(p)
		if err != nil {
			fail("typo", err)
		}
		fmt.Println(r)
	}
	if sel("units") {
		r, err := experiments.ModalUnits(p, []string{
			"garlic", "butter", "flour", "sugar", "olive oil", "milk",
		})
		if err != nil {
			fail("units", err)
		}
		fmt.Println(r)
	}
}
