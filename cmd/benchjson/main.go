// Command benchjson converts `go test -bench` text output into the
// BENCH_*.json artifact schema, optionally filtering to a subset of
// benchmarks:
//
//	go test -bench . -benchmem ./internal/match/ | benchjson -filter MatchName,Rank -o BENCH_match.json
//
// With no -o it writes to stdout; with no -filter it keeps every
// benchmark. Used by `make bench-json` to emit BENCH_match.json for the
// perf-tracking artifacts the nightly workflow archives and gates on.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"nutriprofile/internal/benchfmt"
)

func main() {
	in := flag.String("in", "", "bench output file to read (default: stdin)")
	out := flag.String("o", "", "JSON file to write (default: stdout)")
	filter := flag.String("filter", "", "comma-separated substrings; keep benchmarks whose name contains any")
	flag.Parse()

	var r io.Reader = os.Stdin
	if *in != "" {
		f, err := os.Open(*in)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		r = f
	}
	entries, err := benchfmt.Parse(r)
	if err != nil {
		fatal(err)
	}
	if *filter != "" {
		entries = benchfmt.Filter(entries, strings.Split(*filter, ",")...)
	}
	if len(entries) == 0 {
		fatal(fmt.Errorf("no benchmark lines matched"))
	}

	var w io.Writer = os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		w = f
	}
	if err := benchfmt.WriteJSON(w, entries); err != nil {
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, "benchjson: wrote %d benchmarks\n", len(entries))
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
	os.Exit(1)
}
