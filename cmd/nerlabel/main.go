// Command nerlabel tags ingredient phrases with the paper's entity
// inventory (NAME, STATE, UNIT, QUANTITY, TEMP, DF, SIZE) and prints a
// Table I style extraction for each.
//
// Usage:
//
//	nerlabel "1/2 lb lean ground beef" "1 small onion , finely chopped"
//	nerlabel -model trained -corpus 2000 "2 cups flour"   # perceptron
//	echo "1 tablespoon fresh dill weed" | nerlabel -tokens
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"

	"nutriprofile/internal/ner"
	"nutriprofile/internal/recipedb"
	"nutriprofile/internal/report"
)

func main() {
	model := flag.String("model", "rules", `tagger: "rules" (baseline), "trained" (averaged perceptron) or "crf"`)
	corpusN := flag.Int("corpus", 1000, "training-corpus recipes when -model trained")
	seed := flag.Int64("seed", 1, "corpus/training seed")
	tokens := flag.Bool("tokens", false, "print per-token labels instead of the Table I layout")
	saveTo := flag.String("save", "", "after training, save the model to this file")
	loadFrom := flag.String("load", "", "load a previously saved model instead of training")
	flag.Parse()

	var tagger ner.Tagger
	switch {
	case *loadFrom != "":
		f, err := os.Open(*loadFrom)
		if err != nil {
			fmt.Fprintf(os.Stderr, "nerlabel: %v\n", err)
			os.Exit(1)
		}
		m, err := ner.Load(f)
		f.Close()
		if err != nil {
			fmt.Fprintf(os.Stderr, "nerlabel: %v\n", err)
			os.Exit(1)
		}
		tagger = m
	case *model == "rules":
		tagger = ner.RuleTagger{}
	case *model == "trained" || *model == "crf":
		corpus, err := recipedb.Generate(recipedb.Config{NumRecipes: *corpusN, Seed: *seed})
		if err != nil {
			fmt.Fprintf(os.Stderr, "nerlabel: generating corpus: %v\n", err)
			os.Exit(1)
		}
		var m *ner.Model
		if *model == "crf" {
			m, err = ner.TrainCRF(corpus.Examples(), ner.CRFConfig{Epochs: 4, Seed: *seed})
		} else {
			m, err = ner.Train(corpus.Examples(), ner.TrainConfig{Epochs: 5, Seed: *seed})
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "nerlabel: training: %v\n", err)
			os.Exit(1)
		}
		if *saveTo != "" {
			f, err := os.Create(*saveTo)
			if err != nil {
				fmt.Fprintf(os.Stderr, "nerlabel: %v\n", err)
				os.Exit(1)
			}
			if err := m.Save(f); err != nil {
				f.Close()
				fmt.Fprintf(os.Stderr, "nerlabel: %v\n", err)
				os.Exit(1)
			}
			if err := f.Close(); err != nil {
				fmt.Fprintf(os.Stderr, "nerlabel: %v\n", err)
				os.Exit(1)
			}
			fmt.Fprintf(os.Stderr, "nerlabel: model saved to %s\n", *saveTo)
		}
		tagger = m
	default:
		fmt.Fprintf(os.Stderr, "nerlabel: unknown model %q\n", *model)
		os.Exit(2)
	}

	phrases := flag.Args()
	if len(phrases) == 0 {
		sc := bufio.NewScanner(os.Stdin)
		for sc.Scan() {
			if line := sc.Text(); line != "" {
				phrases = append(phrases, line)
			}
		}
	}
	if len(phrases) == 0 {
		fmt.Fprintln(os.Stderr, "nerlabel: no phrases given")
		os.Exit(2)
	}

	if *tokens {
		for _, p := range phrases {
			ex := ner.Extract(tagger, p)
			_ = ex
			fmt.Printf("%s\n", p)
			toks, labels := tagPhrase(tagger, p)
			for i, tok := range toks {
				fmt.Printf("  %-16s %s\n", tok, labels[i])
			}
		}
		return
	}

	tb := report.NewTable("Ingredient Phrase", "Name", "State", "Quantity", "Unit", "Temp", "D/F", "Size")
	for _, p := range phrases {
		ex := ner.Extract(tagger, p)
		tb.AddRow(p, ex.Name, ex.State, ex.Quantity, ex.Unit, ex.Temp, ex.DryFresh, ex.Size)
	}
	fmt.Print(tb.String())
}

func tagPhrase(t ner.Tagger, phrase string) ([]string, []ner.Label) {
	switch tt := t.(type) {
	case *ner.Model:
		return tt.TagPhrase(phrase)
	case ner.RuleTagger:
		return tt.TagPhrase(phrase)
	default:
		return nil, nil
	}
}
