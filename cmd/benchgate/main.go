// Command benchgate enforces the perf contract between two `go test
// -bench` runs:
//
//	benchgate -old old.txt -new new.txt [-max-slowdown 0.10] [-filter Match,Rank]
//	          [-eff-filter EstimateBatch] [-max-eff-drop 0.10]
//
// It exits nonzero if any benchmark present in both runs got more than
// -max-slowdown worse in ns/op, or increased at all in allocs/op (the
// matcher's zero-allocation warm path is a hard property — one stray
// allocation per op is a bug, not noise). Benchmarks present on only one
// side are ignored, so adding or deleting a benchmark never trips the
// gate. The nightly workflow runs it on HEAD vs HEAD~1 output from the
// same runner, alongside benchstat's human-readable delta.
//
// -eff-filter selects series for the *parallel-efficiency* gate: for
// every matched benchmark that both runs measured at -cpu 1 and -cpu
// N>1, the derived efficiency ns1/(N·nsN) may not drop more than
// -max-eff-drop relative to the baseline run. Efficiency-gated series
// are deliberately separate from the raw ns/op gate (-filter): the
// absolute multi-proc numbers on a small shared CI runner are noise,
// but the old-vs-new scaling *shape* on the same runner is signal.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"nutriprofile/internal/benchfmt"
)

func main() {
	oldPath := flag.String("old", "", "baseline bench output file")
	newPath := flag.String("new", "", "candidate bench output file")
	maxSlowdown := flag.Float64("max-slowdown", 0.10, "allowed fractional ns/op increase (0.10 = +10%)")
	filter := flag.String("filter", "", "comma-separated substrings; gate only benchmarks whose name contains any")
	effFilter := flag.String("eff-filter", "", "comma-separated substrings; parallel-efficiency-gate benchmarks whose name contains any (empty disables)")
	maxEffDrop := flag.Float64("max-eff-drop", 0.10, "allowed fractional parallel-efficiency drop (0.10 = -10%)")
	flag.Parse()
	if *oldPath == "" || *newPath == "" {
		fmt.Fprintln(os.Stderr, "benchgate: both -old and -new are required")
		os.Exit(2)
	}

	oldEntries := load(*oldPath, *filter)
	newEntries := load(*newPath, *filter)
	fmt.Printf("benchgate: comparing %d baseline vs %d candidate benchmarks (limit +%.0f%% ns/op, 0 extra allocs/op)\n",
		len(oldEntries), len(newEntries), 100**maxSlowdown)

	regs := benchfmt.Gate(oldEntries, newEntries, *maxSlowdown)
	if *effFilter != "" {
		oldEff := load(*oldPath, *effFilter)
		newEff := load(*newPath, *effFilter)
		for _, eff := range benchfmt.ParallelEfficiency(newEff) {
			fmt.Printf("benchgate: efficiency %s-%d = %.3f\n", eff.Name, eff.Procs, eff.Value)
		}
		regs = append(regs, benchfmt.GateEfficiency(oldEff, newEff, *maxEffDrop)...)
	}
	if len(regs) == 0 {
		fmt.Println("benchgate: PASS")
		return
	}
	for _, r := range regs {
		fmt.Printf("benchgate: REGRESSION %s\n", r)
	}
	os.Exit(1)
}

func load(path, filter string) []benchfmt.Entry {
	f, err := os.Open(path)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchgate: %v\n", err)
		os.Exit(2)
	}
	defer f.Close()
	entries, err := benchfmt.Parse(f)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchgate: %s: %v\n", path, err)
		os.Exit(2)
	}
	if filter != "" {
		entries = benchfmt.Filter(entries, strings.Split(filter, ",")...)
	}
	return entries
}
