// Command nutriserve serves the estimation pipeline over HTTP — the
// online counterpart of the one-shot nutriprofile CLI.
//
// Routes:
//
//	POST /v1/estimate  {"phrase": "2 cups flour"}           → per-phrase pipeline trace
//	POST /v1/recipe    {"ingredients": [...], "servings": 4, "method": "baked"}
//	                                                        → aggregated recipe profile
//	POST /v1/batch     NDJSON stream of the two bodies above → one NDJSON
//	                                                          response line per input line
//	GET  /v1/healthz                                        → liveness probe
//	GET  /v1/stats                                          → memo/matcher/HTTP counters
//	GET  /metrics                                           → Prometheus text exposition
//	POST /admin/reload {"path": "/data/new.img"}            → hot-swap the DB (with -db;
//	                                                          loopback peers only)
//
// The server sheds load above -max-in-flight concurrent estimation
// requests (429 + Retry-After; it never queues unboundedly), bounds
// request bodies at -max-body bytes (413), deadlines every request at
// -timeout (504), and on SIGINT/SIGTERM stops accepting connections and
// drains in-flight requests for up to -drain before exiting.
//
// Usage:
//
//	nutriserve -addr :8080 -cache 8192 -workers 0 -max-in-flight 64
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"syscall"
	"time"

	"nutriprofile/internal/core"
	"nutriprofile/internal/memo"
	"nutriprofile/internal/server"
	"nutriprofile/internal/usda"
	"nutriprofile/internal/usda/bake"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	maxInFlight := flag.Int("max-in-flight", 64, "admitted estimation requests before load shedding (429)")
	timeout := flag.Duration("timeout", 5*time.Second, "per-request deadline")
	maxBody := flag.Int64("max-body", 1<<20, "request body size limit in bytes")
	drain := flag.Duration("drain", 15*time.Second, "graceful-shutdown drain window for in-flight requests")
	retryAfter := flag.Duration("retry-after", time.Second, "Retry-After hint on shed (429) responses")
	workers := flag.Int("workers", 0, "ingredient worker pool per recipe (0: one per CPU)")
	batchWindow := flag.Int("batch-window", 0, "NDJSON lines per /v1/batch pipeline window (0: default 64)")
	batchWorkers := flag.Int("batch-workers", 0, "estimator workers per /v1/batch window (0: half the CPUs)")
	maxBulkStreams := flag.Int("max-bulk-streams", 0, "concurrently open /v1/batch streams before shedding (0: max-in-flight/4)")
	cacheSize := flag.Int("cache", 8192, "memoization cache entries (phrase + match level); 0 disables")
	cachePolicy := flag.String("cache-policy", "tinylfu", "memo cache admission policy: lru or tinylfu")
	coalesce := flag.Bool("coalesce", true, "coalesce concurrent estimates of the same phrase onto one pipeline pass (no effect with -cache 0)")
	regional := flag.Bool("regional", false, "use the merged SR+FAO composition table")
	dbImage := flag.String("db", "", "serve from a baked DB image (cmd/dbbake); enables POST /admin/reload")
	fuzzy := flag.Bool("fuzzy", false, "enable typo-tolerant matching")
	matchPruning := flag.Bool("match-pruning", true, "candidate-pruned ranking engine; false selects the exhaustive spec engine (ablation)")
	quiet := flag.Bool("quiet", false, "disable per-request access logging")
	pprofAddr := flag.String("pprof-addr", "", "serve net/http/pprof on this address (e.g. localhost:6060); empty disables")
	flag.Parse()

	policy, err := memo.ParsePolicy(*cachePolicy)
	if err != nil {
		log.Fatalf("nutriserve: %v", err)
	}
	opts := core.Options{FuzzyMatch: *fuzzy, CacheSize: *cacheSize, DisableCoalescing: !*coalesce, CachePolicy: policy, DisableMatchPruning: !*matchPruning}
	var est *core.Estimator
	switch {
	case *dbImage != "":
		// Baked image: single-read load, index adopted zero-copy, and the
		// image stays hot-swappable at runtime via POST /admin/reload.
		if *regional {
			log.Fatalf("nutriserve: -db and -regional are mutually exclusive")
		}
		ld, lerr := bake.LoadFile(*dbImage)
		if lerr != nil {
			log.Fatalf("nutriserve: loading %s: %v", *dbImage, lerr)
		}
		est, err = core.NewWithIndex(ld.DB, nil, opts, ld.Index, *dbImage)
	case *regional:
		est, err = core.New(usda.WithRegional(), nil, opts)
	default:
		est, err = core.New(usda.Seed(), nil, opts)
	}
	if err != nil {
		log.Fatalf("nutriserve: %v", err)
	}

	var access *log.Logger
	if !*quiet {
		access = log.New(os.Stdout, "", log.LstdFlags|log.Lmicroseconds)
	}
	srv, err := server.New(server.Config{
		Estimator:      est,
		MaxInFlight:    *maxInFlight,
		RequestTimeout: *timeout,
		MaxBodyBytes:   *maxBody,
		Workers:        *workers,
		BatchWindow:    *batchWindow,
		BatchWorkers:   *batchWorkers,
		MaxBulkStreams: *maxBulkStreams,
		RetryAfter:     *retryAfter,
		EnableReload:   *dbImage != "",
		AccessLog:      access,
	})
	if err != nil {
		log.Fatalf("nutriserve: %v", err)
	}

	// Profiling listener, off by default and always separate from the
	// serving listener so the debug surface is never exposed on the
	// public address. Routes are registered on a private mux — the
	// default mux stays empty.
	if *pprofAddr != "" {
		mux := http.NewServeMux()
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		go func() {
			log.Printf("nutriserve: pprof listening on %s", *pprofAddr)
			if err := http.ListenAndServe(*pprofAddr, mux); err != nil {
				log.Printf("nutriserve: pprof listener: %v", err)
			}
		}()
	}

	// SIGINT/SIGTERM flips the serve context; Serve then drains
	// in-flight requests before returning.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	st := est.SnapshotStats()
	log.Printf("nutriserve: listening on %s (max-in-flight=%d timeout=%s cache=%d foods=%d db=%s v%d)",
		*addr, *maxInFlight, *timeout, *cacheSize, st.Foods, st.Source, st.Version)
	if err := srv.ListenAndServe(ctx, *addr, *drain); err != nil {
		fmt.Fprintf(os.Stderr, "nutriserve: %v\n", err)
		os.Exit(1)
	}
	log.Printf("nutriserve: drained, exiting")
}
