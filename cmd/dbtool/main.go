// Command dbtool inspects and exports the composition tables: the SR
// seed, the FAO-style regional supplement, or a CSV file in the usda
// interchange format.
//
// Usage:
//
//	dbtool -list                         # every description, NDB order
//	dbtool -search "milk"                # matcher-ranked candidates
//	dbtool -show 1001                    # one food with weights
//	dbtool -stats                        # table statistics
//	dbtool -export seed.csv              # write the table as CSV
//	dbtool -db regional -list            # the regional table
//	dbtool -db merged -search "paneer"   # seed + regional
//	dbtool -import my.csv -stats         # load a custom table
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"nutriprofile/internal/match"
	"nutriprofile/internal/report"
	"nutriprofile/internal/units"
	"nutriprofile/internal/usda"
)

func main() {
	dbName := flag.String("db", "seed", `table: "seed", "regional", or "merged"`)
	importPath := flag.String("import", "", "load the table from a CSV file instead")
	list := flag.Bool("list", false, "list every food description")
	search := flag.String("search", "", "rank matching descriptions for an ingredient name")
	show := flag.Int("show", 0, "print one food by NDB number")
	stats := flag.Bool("stats", false, "print table statistics")
	matchPruning := flag.Bool("match-pruning", true, "candidate-pruned ranking engine for -search; false selects the exhaustive spec engine (ablation)")
	export := flag.String("export", "", "write the table as CSV to this file")
	flag.Parse()

	db, err := selectDB(*dbName, *importPath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "dbtool: %v\n", err)
		os.Exit(1)
	}

	ran := false
	if *list {
		ran = true
		for i := 0; i < db.Len(); i++ {
			f := db.At(i)
			fmt.Printf("%6d  %s\n", f.NDB, f.Desc)
		}
	}
	if *search != "" {
		ran = true
		opts := match.DefaultOptions()
		opts.ExplainMatched = true // explain output: show the matched words
		opts.DisablePruning = !*matchPruning
		m := match.New(db, opts)
		results := m.Rank(match.Query{Name: *search}, 10)
		if len(results) == 0 {
			fmt.Printf("no match for %q\n", *search)
		}
		for _, r := range results {
			bonus := ""
			if r.RawBonus {
				bonus = " +raw"
			}
			fmt.Printf("J*=%.3f prio=%-3d%-5s %6d  %-60s matched=%v\n",
				r.Score, r.Priority, bonus, r.NDB, r.Desc, r.Matched)
		}
	}
	if *show != 0 {
		ran = true
		f, ok := db.ByNDB(*show)
		if !ok {
			fmt.Fprintf(os.Stderr, "dbtool: NDB %d not found\n", *show)
			os.Exit(1)
		}
		fmt.Printf("%d — %s\n\nPer 100 g:\n%s\n", f.NDB, f.Desc, f.Per100g.Table())
		if len(f.Weights) > 0 {
			tb := report.NewTable("seq", "amount", "unit", "grams", "g/1")
			for _, w := range f.Weights {
				tb.AddRow(fmt.Sprint(w.Seq), report.F2(w.Amount), w.Unit,
					report.F2(w.Grams), report.F2(w.GramsPerOne()))
			}
			fmt.Println("Weights:")
			fmt.Print(tb.String())
		}
	}
	if *stats {
		ran = true
		printStats(db)
	}
	if *export != "" {
		ran = true
		f, err := os.Create(*export)
		if err != nil {
			fmt.Fprintf(os.Stderr, "dbtool: %v\n", err)
			os.Exit(1)
		}
		if err := db.WriteCSV(f); err != nil {
			f.Close()
			fmt.Fprintf(os.Stderr, "dbtool: %v\n", err)
			os.Exit(1)
		}
		if err := f.Close(); err != nil {
			fmt.Fprintf(os.Stderr, "dbtool: %v\n", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "dbtool: wrote %d foods to %s\n", db.Len(), *export)
	}
	if !ran {
		flag.Usage()
		os.Exit(2)
	}
}

func selectDB(name, importPath string) (*usda.DB, error) {
	if importPath != "" {
		f, err := os.Open(importPath)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		return usda.ReadCSV(f)
	}
	switch strings.ToLower(name) {
	case "seed":
		return usda.Seed(), nil
	case "regional":
		return usda.Regional(), nil
	case "merged":
		return usda.WithRegional(), nil
	default:
		return nil, fmt.Errorf("unknown table %q", name)
	}
}

func printStats(db *usda.DB) {
	groups := map[int]int{}
	weights, unresolvable := 0, 0
	for i := 0; i < db.Len(); i++ {
		f := db.At(i)
		groups[f.NDB/1000]++
		weights += len(f.Weights)
		for _, w := range f.Weights {
			if _, known := units.Normalize(w.Unit); !known {
				unresolvable++
			}
		}
	}
	fmt.Printf("foods:                %d\n", db.Len())
	fmt.Printf("weight rows:          %d (%.1f per food)\n", weights, float64(weights)/float64(db.Len()))
	fmt.Printf("unresolvable units:   %d weight rows\n", unresolvable)
	fmt.Printf("food groups (NDB/1000): %d\n", len(groups))
}
