// Command dbbake compiles a composition table into the baked image that
// nutriserve loads with -db and hot-swaps via POST /admin/reload. Baking
// moves all parsing and index construction offline: the serving process
// decodes an image with a single read and a handful of slice casts
// (~30× faster than parse-and-index, near-zero allocations) and the
// CRC-32C seal means a truncated or bit-flipped image is rejected
// before it can reach the estimator.
//
// Sources, mutually exclusive:
//
//	dbbake -o seed.img                        # built-in SR seed table (default)
//	dbbake -o full.img -sr /data/sr26         # genuine USDA SR26 ASCII release
//	                                          # (FOOD_DES.txt, NUT_DATA.txt, WEIGHT.txt)
//	dbbake -o reg.img -regional               # seed + FAO-style regional supplement
//	dbbake -o big.img -synth 7500             # seed + N synthetic foods (benchmarks)
//
// Inspection:
//
//	dbbake -info seed.img                     # decode and print image statistics
package main

import (
	"flag"
	"fmt"
	"os"

	"nutriprofile/internal/usda"
	"nutriprofile/internal/usda/bake"
	"nutriprofile/internal/usda/sr"
)

func main() {
	out := flag.String("o", "", "output image path (atomic write via rename)")
	srDir := flag.String("sr", "", "parse a USDA SR26 ASCII release from this directory")
	regional := flag.Bool("regional", false, "bake the merged SR+regional table")
	synth := flag.Int("synth", 0, "append N synthetic foods to the seed (load testing)")
	synthSeed := flag.Int64("synth-seed", 1, "RNG seed for -synth")
	info := flag.String("info", "", "decode an existing image and print its statistics")
	flag.Parse()

	if err := run(*out, *srDir, *regional, *synth, *synthSeed, *info); err != nil {
		fmt.Fprintf(os.Stderr, "dbbake: %v\n", err)
		os.Exit(1)
	}
}

func run(out, srDir string, regional bool, synth int, synthSeed int64, info string) error {
	if info != "" {
		if out != "" || srDir != "" || regional || synth != 0 {
			return fmt.Errorf("-info does not combine with bake flags")
		}
		return printInfo(info)
	}
	if out == "" {
		return fmt.Errorf("no output: use -o IMAGE (or -info IMAGE to inspect)")
	}
	nSources := 0
	for _, on := range []bool{srDir != "", regional, synth != 0} {
		if on {
			nSources++
		}
	}
	if nSources > 1 {
		return fmt.Errorf("-sr, -regional and -synth are mutually exclusive")
	}

	var db *usda.DB
	switch {
	case srDir != "":
		parsed, rep, err := sr.ParseDir(srDir)
		if err != nil {
			return err
		}
		db = parsed
		fmt.Printf("parsed %s: %d foods, %d nutrient rows (%d untracked), %d weights (%d skipped)\n",
			srDir, rep.Foods, rep.NutrientRows, rep.UnknownNutrients, rep.WeightRows, rep.SkippedWeights)
	case regional:
		db = usda.WithRegional()
	case synth != 0:
		if synth < 0 {
			return fmt.Errorf("-synth must be non-negative, got %d", synth)
		}
		db = usda.Merged(synth, synthSeed)
	default:
		db = usda.Seed()
	}

	if err := bake.WriteFile(out, db, nil); err != nil {
		return err
	}
	st, err := os.Stat(out)
	if err != nil {
		return err
	}
	fmt.Printf("baked %s: %d foods, %d bytes\n", out, db.Len(), st.Size())
	return nil
}

func printInfo(path string) error {
	ld, err := bake.LoadFile(path)
	if err != nil {
		return err
	}
	weights := 0
	for i := 0; i < ld.DB.Len(); i++ {
		weights += len(ld.DB.At(i).Weights)
	}
	fmt.Printf("image:   %s\n", path)
	fmt.Printf("bytes:   %d\n", ld.Bytes)
	fmt.Printf("crc32c:  %08x\n", ld.CRC)
	fmt.Printf("foods:   %d\n", ld.DB.Len())
	fmt.Printf("weights: %d\n", weights)
	fmt.Printf("terms:   %d\n", len(ld.Index.Terms))
	return nil
}
