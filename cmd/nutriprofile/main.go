// Command nutriprofile estimates the nutritional profile of a recipe from
// its ingredient section, the end-to-end pipeline of the paper.
//
// Usage:
//
//	nutriprofile [-servings N] [-v] "2 cups flour" "1 cup sugar" ...
//	echo "2 cups flour" | nutriprofile -servings 4
//	nutriprofile -file recipe.txt -regional -yield
//
// Each argument (or stdin line) is one ingredient phrase; -file parses a
// full plain-text recipe (title, servings, ingredient and instruction
// sections). The tool prints the per-ingredient mapping trace and the
// total and per-serving nutrient profiles.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"

	"nutriprofile/internal/core"
	"nutriprofile/internal/recipedb"
	"nutriprofile/internal/report"
	"nutriprofile/internal/usda"
	"nutriprofile/internal/yield"
)

func main() {
	servings := flag.Int("servings", 1, "number of servings the recipe yields")
	verbose := flag.Bool("v", false, "print the per-ingredient extraction and match trace")
	file := flag.String("file", "", "parse a plain-text recipe file instead of phrase arguments")
	regional := flag.Bool("regional", false, "use the merged SR+FAO composition table")
	applyYield := flag.Bool("yield", false, "apply the cooking-yield correction (method from the recipe text)")
	fuzzy := flag.Bool("fuzzy", false, "enable typo-tolerant matching")
	flag.Parse()

	phrases := flag.Args()
	method := yield.None
	if *file != "" {
		f, err := os.Open(*file)
		if err != nil {
			fmt.Fprintf(os.Stderr, "nutriprofile: %v\n", err)
			os.Exit(1)
		}
		rec, err := recipedb.ParseText(f)
		f.Close()
		if err != nil {
			fmt.Fprintf(os.Stderr, "nutriprofile: %v\n", err)
			os.Exit(1)
		}
		phrases = rec.Phrases()
		method = rec.Method
		if rec.Servings > 0 {
			*servings = rec.Servings
		}
		fmt.Printf("%s  (%q, %d servings, method: %s)\n\n",
			rec.Title, rec.ServingsText, *servings, method)
	}
	if len(phrases) == 0 {
		sc := bufio.NewScanner(os.Stdin)
		for sc.Scan() {
			if line := sc.Text(); line != "" {
				phrases = append(phrases, line)
			}
		}
		if err := sc.Err(); err != nil {
			fmt.Fprintf(os.Stderr, "nutriprofile: reading stdin: %v\n", err)
			os.Exit(1)
		}
	}
	if len(phrases) == 0 {
		fmt.Fprintln(os.Stderr, "nutriprofile: no ingredient phrases given (args, stdin or -file)")
		os.Exit(2)
	}

	db := usda.Seed()
	if *regional {
		db = usda.WithRegional()
	}
	e, err := core.New(db, nil, core.Options{FuzzyMatch: *fuzzy})
	if err != nil {
		fmt.Fprintf(os.Stderr, "nutriprofile: %v\n", err)
		os.Exit(1)
	}
	if !*applyYield {
		method = yield.None
	}
	res, err := e.EstimateRecipeCooked(phrases, *servings, method)
	if err != nil {
		fmt.Fprintf(os.Stderr, "nutriprofile: %v\n", err)
		os.Exit(1)
	}

	tb := report.NewTable("Ingredient Phrase", "Matched Food Description", "Grams", "kcal")
	for _, ir := range res.Ingredients {
		desc := "(unmatched)"
		if ir.Matched {
			desc = ir.Match.Desc
		}
		tb.AddRow(ir.Phrase, desc, report.F2(ir.Grams), report.F2(ir.Profile.EnergyKcal))
	}
	fmt.Print(tb.String())
	fmt.Printf("\nMapped %s of ingredient lines\n", report.Pct(res.MappedFraction))

	if *verbose {
		fmt.Println()
		for _, ir := range res.Ingredients {
			fmt.Printf("%q\n  NER: name=%q state=%q qty=%q unit=%q temp=%q df=%q size=%q\n",
				ir.Phrase, ir.Extraction.Name, ir.Extraction.State,
				ir.Extraction.Quantity, ir.Extraction.Unit,
				ir.Extraction.Temp, ir.Extraction.DryFresh, ir.Extraction.Size)
			if ir.Matched {
				fmt.Printf("  match: %q (NDB %d, J*=%.3f)\n  unit: %s via %s/%s → %.1f g\n",
					ir.Match.Desc, ir.Match.NDB, ir.Match.Score,
					ir.Unit, ir.UnitOrigin, ir.GramsVia, ir.Grams)
			}
		}
	}

	fmt.Printf("\nTotal (%d serving(s)):\n%s", *servings, res.Total.Table())
	if *servings > 1 {
		fmt.Printf("\nPer serving:\n%s", res.PerServing.Table())
	}
}
