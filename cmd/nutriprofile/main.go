// Command nutriprofile estimates the nutritional profile of a recipe from
// its ingredient section, the end-to-end pipeline of the paper.
//
// Usage:
//
//	nutriprofile [-servings N] [-v] "2 cups flour" "1 cup sugar" ...
//	echo "2 cups flour" | nutriprofile -servings 4
//	nutriprofile -file recipe.txt -regional -yield
//	nutriprofile -batch -workers 8 recipes/*.txt
//
// Each argument (or stdin line) is one ingredient phrase; -file parses a
// full plain-text recipe (title, servings, ingredient and instruction
// sections). The tool prints the per-ingredient mapping trace and the
// total and per-serving nutrient profiles.
//
// -batch switches to corpus mode: every argument is a plain-text recipe
// file, estimated concurrently on a -workers-sized pool sharing one
// memoized estimator (-cache entries); one summary line per recipe is
// printed in argument order.
//
// -stats appends the hot path's observability counters to either mode:
// phrase/match memoization cache hit rates and the matcher engine's
// index shape (vocabulary size, posting lists) and arena-pool hit rate.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"

	"nutriprofile/internal/core"
	"nutriprofile/internal/memo"
	"nutriprofile/internal/recipedb"
	"nutriprofile/internal/report"
	"nutriprofile/internal/usda"
	"nutriprofile/internal/yield"
)

func main() {
	servings := flag.Int("servings", 1, "number of servings the recipe yields")
	verbose := flag.Bool("v", false, "print the per-ingredient extraction and match trace")
	file := flag.String("file", "", "parse a plain-text recipe file instead of phrase arguments")
	regional := flag.Bool("regional", false, "use the merged SR+FAO composition table")
	applyYield := flag.Bool("yield", false, "apply the cooking-yield correction (method from the recipe text)")
	fuzzy := flag.Bool("fuzzy", false, "enable typo-tolerant matching")
	batch := flag.Bool("batch", false, "treat every argument as a recipe file and estimate them concurrently")
	workers := flag.Int("workers", 0, "worker pool size for -batch and ingredient estimation (default: one per CPU)")
	cacheSize := flag.Int("cache", 8192, "memoization cache entries (phrase + match level); 0 disables")
	cachePolicy := flag.String("cache-policy", "tinylfu", "memo cache admission policy: lru or tinylfu")
	stats := flag.Bool("stats", false, "print memoization-cache and matcher-engine statistics after estimation")
	matchPruning := flag.Bool("match-pruning", true, "candidate-pruned ranking engine; false selects the exhaustive spec engine (ablation)")
	flag.Parse()

	policy, err := memo.ParsePolicy(*cachePolicy)
	if err != nil {
		fmt.Fprintf(os.Stderr, "nutriprofile: %v\n", err)
		os.Exit(2)
	}

	phrases := flag.Args()
	method := yield.None
	if *batch {
		runBatch(flag.Args(), *regional, *fuzzy, *applyYield, *verbose, *stats, *workers, *cacheSize, policy, *matchPruning)
		return
	}
	if *file != "" {
		f, err := os.Open(*file)
		if err != nil {
			fmt.Fprintf(os.Stderr, "nutriprofile: %v\n", err)
			os.Exit(1)
		}
		rec, err := recipedb.ParseText(f)
		f.Close()
		if err != nil {
			fmt.Fprintf(os.Stderr, "nutriprofile: %v\n", err)
			os.Exit(1)
		}
		phrases = rec.Phrases()
		method = rec.Method
		if rec.Servings > 0 {
			*servings = rec.Servings
		}
		fmt.Printf("%s  (%q, %d servings, method: %s)\n\n",
			rec.Title, rec.ServingsText, *servings, method)
	}
	if len(phrases) == 0 {
		sc := bufio.NewScanner(os.Stdin)
		for sc.Scan() {
			if line := sc.Text(); line != "" {
				phrases = append(phrases, line)
			}
		}
		if err := sc.Err(); err != nil {
			fmt.Fprintf(os.Stderr, "nutriprofile: reading stdin: %v\n", err)
			os.Exit(1)
		}
	}
	if len(phrases) == 0 {
		fmt.Fprintln(os.Stderr, "nutriprofile: no ingredient phrases given (args, stdin or -file)")
		os.Exit(2)
	}

	e := newEstimator(*regional, *fuzzy, *cacheSize, policy, *matchPruning)
	if !*applyYield {
		method = yield.None
	}
	res, err := e.EstimateRecipeCookedConcurrent(phrases, *servings, method, *workers)
	if err != nil {
		fmt.Fprintf(os.Stderr, "nutriprofile: %v\n", err)
		os.Exit(1)
	}

	tb := report.NewTable("Ingredient Phrase", "Matched Food Description", "Grams", "kcal")
	for _, ir := range res.Ingredients {
		desc := "(unmatched)"
		if ir.Matched {
			desc = ir.Match.Desc
		}
		tb.AddRow(ir.Phrase, desc, report.F2(ir.Grams), report.F2(ir.Profile.EnergyKcal))
	}
	fmt.Print(tb.String())
	fmt.Printf("\nMapped %s of ingredient lines\n", report.Pct(res.MappedFraction))

	if *verbose {
		fmt.Println()
		for _, ir := range res.Ingredients {
			fmt.Printf("%q\n  NER: name=%q state=%q qty=%q unit=%q temp=%q df=%q size=%q\n",
				ir.Phrase, ir.Extraction.Name, ir.Extraction.State,
				ir.Extraction.Quantity, ir.Extraction.Unit,
				ir.Extraction.Temp, ir.Extraction.DryFresh, ir.Extraction.Size)
			if ir.Matched {
				fmt.Printf("  match: %q (NDB %d, J*=%.3f)\n  unit: %s via %s/%s → %.1f g\n",
					ir.Match.Desc, ir.Match.NDB, ir.Match.Score,
					ir.Unit, ir.UnitOrigin, ir.GramsVia, ir.Grams)
			}
		}
	}

	fmt.Printf("\nTotal (%d serving(s)):\n%s", *servings, res.Total.Table())
	if *servings > 1 {
		fmt.Printf("\nPer serving:\n%s", res.PerServing.Table())
	}
	if *stats {
		printStats(e)
	}
}

// printStats dumps the estimation hot path's observability counters: the
// two memoization caches and the interned matcher engine (index shape
// plus arena-pool recycling).
func printStats(e *core.Estimator) {
	ps, ms := e.CacheStats()
	fmt.Printf("\nphrase cache:  %d hits / %d misses (%.0f%% hit rate), %d evictions, %d entries [%s]\n",
		ps.Hits, ps.Misses, 100*ps.HitRate(), ps.Evictions, ps.Entries, ps.Policy)
	fmt.Printf("match cache:   %d hits / %d misses (%.0f%% hit rate), %d evictions, %d entries [%s]\n",
		ms.Hits, ms.Misses, 100*ms.HitRate(), ms.Evictions, ms.Entries, ms.Policy)
	if ps.Policy == "tinylfu" {
		fmt.Printf("admission:     phrase %d admitted / %d rejected, match %d admitted / %d rejected, %d sketch resets\n",
			ps.Admissions, ps.Rejections, ms.Admissions, ms.Rejections, ps.SketchResets+ms.SketchResets)
	}
	st := e.MatcherStats()
	fmt.Printf("matcher index: %d docs, %d-term vocabulary, %d posting lists, %d postings\n",
		st.Docs, st.VocabSize, st.PostingLists, st.PostingEntries)
	fmt.Printf("matcher arena: %d queries, %d pool misses (%.0f%% pool hit rate)\n",
		st.PoolGets, st.PoolMisses, 100*st.PoolHitRate())
	if st.PruningEnabled {
		fmt.Printf("matcher prune: %d postings avoided, %d candidates dropped, %d compactions, %d gather exits, %d probe terms, %d terms skipped\n",
			st.PrunePostingsAvoided, st.PruneDocsDropped, st.PruneCompactions,
			st.PruneGatherExits, st.AdaptiveProbeTerms, st.PruneTermsSkipped)
	}
}

// newEstimator builds the shared estimator from the CLI switches.
func newEstimator(regional, fuzzy bool, cacheSize int, policy memo.Policy, pruning bool) *core.Estimator {
	db := usda.Seed()
	if regional {
		db = usda.WithRegional()
	}
	e, err := core.New(db, nil, core.Options{FuzzyMatch: fuzzy, CacheSize: cacheSize, CachePolicy: policy, DisableMatchPruning: !pruning})
	if err != nil {
		fmt.Fprintf(os.Stderr, "nutriprofile: %v\n", err)
		os.Exit(1)
	}
	return e
}

// runBatch is corpus mode: each arg is a recipe file; all recipes are
// estimated concurrently on one worker pool sharing one memoized
// estimator, and summarized one line per recipe in argument order.
func runBatch(files []string, regional, fuzzy, applyYield, verbose, stats bool, workers, cacheSize int, policy memo.Policy, pruning bool) {
	if len(files) == 0 {
		fmt.Fprintln(os.Stderr, "nutriprofile: -batch requires recipe-file arguments")
		os.Exit(2)
	}
	type meta struct {
		title    string
		parseErr error
	}
	inputs := make([]core.RecipeInput, len(files))
	metas := make([]meta, len(files))
	for i, path := range files {
		f, err := os.Open(path)
		if err != nil {
			metas[i].parseErr = err
			continue
		}
		rec, err := recipedb.ParseText(f)
		f.Close()
		if err != nil {
			metas[i].parseErr = err
			continue
		}
		servings := rec.Servings
		if servings <= 0 {
			servings = 1
		}
		method := yield.None
		if applyYield {
			method = rec.Method
		}
		metas[i].title = rec.Title
		inputs[i] = core.RecipeInput{Phrases: rec.Phrases(), Servings: servings, Method: method}
	}

	e := newEstimator(regional, fuzzy, cacheSize, policy, pruning)
	outcomes := e.EstimateRecipes(inputs, workers)

	tb := report.NewTable("Recipe", "Title", "Mapped", "Total kcal", "kcal/serving")
	failures := 0
	for i, out := range outcomes {
		switch {
		case metas[i].parseErr != nil:
			failures++
			fmt.Fprintf(os.Stderr, "nutriprofile: %s: %v\n", files[i], metas[i].parseErr)
		case out.Err != nil:
			failures++
			fmt.Fprintf(os.Stderr, "nutriprofile: %s: %v\n", files[i], out.Err)
		default:
			tb.AddRow(files[i], metas[i].title, report.Pct(out.Result.MappedFraction),
				report.F2(out.Result.Total.EnergyKcal), report.F2(out.Result.PerServing.EnergyKcal))
		}
	}
	fmt.Print(tb.String())
	if verbose || stats {
		printStats(e)
	}
	if failures > 0 {
		os.Exit(1)
	}
}
