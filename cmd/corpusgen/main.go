// Command corpusgen generates a RecipeDB-style synthetic corpus and
// writes it as CSV, so downstream tools (and users replacing the
// generator with real scraped data) share one interchange format.
//
// Usage:
//
//	corpusgen -n 20000 -seed 42 -o corpus.csv
//	corpusgen -n 500 | head
//	corpusgen -n 2000 -stats          # print summary statistics only
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"

	"nutriprofile/internal/recipedb"
	"nutriprofile/internal/report"
)

func main() {
	n := flag.Int("n", 1000, "number of recipes")
	seed := flag.Int64("seed", 42, "generation seed")
	out := flag.String("o", "", "output file (default stdout)")
	stats := flag.Bool("stats", false, "print corpus statistics instead of CSV")
	flag.Parse()

	corpus, err := recipedb.Generate(recipedb.Config{NumRecipes: *n, Seed: *seed})
	if err != nil {
		fmt.Fprintf(os.Stderr, "corpusgen: %v\n", err)
		os.Exit(1)
	}

	if *stats {
		printStats(corpus)
		return
	}

	var w *bufio.Writer
	if *out == "" {
		w = bufio.NewWriter(os.Stdout)
	} else {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintf(os.Stderr, "corpusgen: %v\n", err)
			os.Exit(1)
		}
		defer f.Close()
		w = bufio.NewWriter(f)
	}
	if err := corpus.WriteCSV(w); err != nil {
		fmt.Fprintf(os.Stderr, "corpusgen: %v\n", err)
		os.Exit(1)
	}
	if err := w.Flush(); err != nil {
		fmt.Fprintf(os.Stderr, "corpusgen: %v\n", err)
		os.Exit(1)
	}
}

func printStats(c *recipedb.Corpus) {
	lines, regional := 0, 0
	cuisines := map[string]int{}
	for i := range c.Recipes {
		cuisines[c.Recipes[i].Cuisine]++
		for _, ing := range c.Recipes[i].Ingredients {
			lines++
			if ing.Gold.Regional {
				regional++
			}
		}
	}
	fmt.Printf("recipes:             %d\n", c.Len())
	fmt.Printf("ingredient lines:    %d\n", lines)
	fmt.Printf("regional lines:      %d (%s)\n", regional, report.Pct(float64(regional)/float64(lines)))
	fmt.Printf("cuisines:            %d\n", len(cuisines))
	fmt.Printf("avg lines per recipe: %.1f\n", float64(lines)/float64(c.Len()))
}
