// Command loadgen drives a running nutriserve with the paper-scale
// synthetic recipe corpus: the whole corpus is streamed through
// concurrent POST /v1/batch bulk streams while interactive workers mix
// POST /v1/estimate and POST /v1/recipe traffic against the same
// process — the sustained-load shape the serving layer's backpressure
// design (DESIGN.md §14) is built for.
//
// The run verifies correctness, not just survival: every bulk stream
// must come back with exactly one well-formed NDJSON line per input
// line (zero lost, zero torn, zero in-stream errors for the generated
// corpus), and -metrics-check cross-checks the server's own
// /metrics batch counters against the client-side line count. Optional
// SLO gates turn the run into a CI check: -slo-p50/-slo-p99 bound the
// interactive latency quantiles observed while bulk runs, -min-rps
// floors the bulk throughput in recipes per second, and
// -min-hit-ratio floors the server's phrase-cache hit ratio computed
// from /metrics counter deltas over the run.
//
// -zipf skews the interactive workers' phrase/recipe popularity with
// a Zipf(s) distribution (rank 0 hottest) instead of a uniform draw —
// the head-heavy shape real recipe traffic has, and the workload the
// TinyLFU admission policy (-cache-policy on the server) is built for.
//
// Usage:
//
//	loadgen -addr http://127.0.0.1:8080 -recipes 2000 -bulk 2 -interactive 4
//	loadgen -paper -min-rps 100 -slo-p99 250ms -metrics-check
//	loadgen -recipes 2000 -zipf 1.1 -min-hit-ratio 0.30
package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"os"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"nutriprofile/internal/recipedb"
	"nutriprofile/internal/yield"
)

// paperCorpusSize is the recipe count of the paper's scraped corpus.
const paperCorpusSize = 118071

// recipeLine is the NDJSON recipe form (the wire shape of
// server.RecipeRequest).
type recipeLine struct {
	Ingredients []string `json:"ingredients"`
	Servings    int      `json:"servings,omitempty"`
	Method      string   `json:"method,omitempty"`
}

// estimateLine is the NDJSON estimate form (server.EstimateRequest).
type estimateLine struct {
	Phrase string `json:"phrase"`
}

func main() {
	addr := flag.String("addr", "http://127.0.0.1:8080", "base URL of the running nutriserve")
	recipes := flag.Int("recipes", 2000, "corpus size to stream through /v1/batch")
	paper := flag.Bool("paper", false, "use the paper-scale corpus (118,071 recipes; overrides -recipes)")
	seed := flag.Int64("seed", 1, "corpus generation seed")
	bulk := flag.Int("bulk", 2, "concurrent /v1/batch streams the corpus is split across")
	interactive := flag.Int("interactive", 4, "concurrent interactive workers mixing /v1/estimate and /v1/recipe")
	sloP50 := flag.Duration("slo-p50", 0, "fail if interactive p50 exceeds this while bulk runs (0 disables)")
	sloP99 := flag.Duration("slo-p99", 0, "fail if interactive p99 exceeds this while bulk runs (0 disables)")
	minRPS := flag.Float64("min-rps", 0, "fail if bulk throughput falls below this many recipes/s (0 disables)")
	maxShedFrac := flag.Float64("max-shed-frac", 0, "fail if more than this fraction of interactive requests is shed with 429 (0 disables)")
	metricsCheck := flag.Bool("metrics-check", false, "scrape /metrics before and after and verify the batch counter deltas")
	zipfS := flag.Float64("zipf", 0, "Zipf skew s for interactive phrase/recipe popularity (0: uniform)")
	minHitRatio := flag.Float64("min-hit-ratio", 0, "fail if the server's phrase-cache hit ratio over the run falls below this (scrapes /metrics; 0 disables)")
	cold := flag.Bool("cold", false, "salt every bulk phrase with a unique token: 100% cache misses, so the run measures the matcher-bound cold path (-min-rps becomes the cold-path recipes/s floor)")
	flag.Parse()

	n := *recipes
	if *paper {
		n = paperCorpusSize
	}
	if *bulk < 1 {
		fatalf("-bulk must be >= 1")
	}
	base := strings.TrimRight(*addr, "/")

	// Render the corpus into per-stream NDJSON buffers up front so the
	// measured window contains no generation cost. A small prefix is
	// kept as structured lines for the interactive mix.
	bufs := make([]*bytes.Buffer, *bulk)
	for i := range bufs {
		bufs[i] = &bytes.Buffer{}
	}
	counts := make([]int, *bulk)
	var phrases []string
	var sampleRecipes []recipeLine
	i, saltID := 0, 0
	err := recipedb.Each(recipedb.Config{NumRecipes: n, Seed: *seed}, func(r recipedb.Recipe) bool {
		line := recipeLine{Ingredients: make([]string, len(r.Ingredients)), Servings: r.Servings}
		for j := range r.Ingredients {
			line.Ingredients[j] = r.Ingredients[j].Phrase
		}
		if r.Method != yield.None {
			line.Method = r.Method.String()
		}
		// -cold salts the wire copy only: every bulk phrase gets a
		// globally unique (out-of-vocabulary) trailing token, so no two
		// lines share a normalized token stream and every single phrase
		// misses the phrase cache, the slot L1s, and the flight layer —
		// the matcher pays full ranking cost for the whole corpus. The
		// interactive mix and samples keep the unsalted phrases.
		wire := line
		if *cold {
			salted := make([]string, len(line.Ingredients))
			for j, p := range line.Ingredients {
				saltID++
				salted[j] = p + " zzcold" + strconv.Itoa(saltID)
			}
			wire.Ingredients = salted
		}
		b, merr := json.Marshal(wire)
		if merr != nil {
			fatalf("rendering recipe %d: %v", r.ID, merr)
		}
		k := i % *bulk
		bufs[k].Write(b)
		bufs[k].WriteByte('\n')
		counts[k]++
		if len(phrases) < 4096 {
			phrases = append(phrases, line.Ingredients[0])
		}
		if len(sampleRecipes) < 256 {
			sampleRecipes = append(sampleRecipes, line)
		}
		i++
		return true
	})
	if err != nil {
		fatalf("generating corpus: %v", err)
	}
	total := 0
	for _, c := range counts {
		total += c
	}
	mode := "warm"
	if *cold {
		mode = "cold (salted, 100% miss)"
	}
	fmt.Printf("loadgen: corpus ready: %d recipes across %d bulk streams (%d interactive workers, zipf s=%g, %s)\n",
		total, *bulk, *interactive, *zipfS, mode)

	// With -zipf the interactive mix draws keys by Zipf rank — rank 0
	// is the hottest phrase — modeling the head-heavy popularity of a
	// production recipe site instead of a uniform sweep. The samplers
	// are shared across workers via the pure Rank() lookup; each worker
	// keeps its own rng.
	var zipfPhrase, zipfRecipe *recipedb.Zipf
	if *zipfS > 0 {
		zipfPhrase = recipedb.NewZipf(len(phrases), *zipfS, *seed)
		zipfRecipe = recipedb.NewZipf(len(sampleRecipes), *zipfS, *seed)
	}

	needScrape := *metricsCheck || *minHitRatio > 0
	var before map[string]float64
	if needScrape {
		if before, err = scrapeMetrics(base); err != nil {
			fatalf("scraping /metrics before run: %v", err)
		}
	}

	// Interactive workers run for the duration of the bulk phase; their
	// latencies are the quantiles the SLO gates judge.
	var stop atomic.Bool
	statsCh := make(chan workerStats, *interactive)
	var iwg sync.WaitGroup
	for w := 0; w < *interactive; w++ {
		iwg.Add(1)
		go func(wid int) {
			defer iwg.Done()
			statsCh <- interactiveWorker(&stop, base, phrases, sampleRecipes, zipfPhrase, zipfRecipe, wid)
		}(w)
	}

	// Bulk phase: each stream POSTs its pre-rendered share. net/http
	// writes the request body from its own goroutine, so reading the
	// response concurrently here is what keeps the stream's TCP windows
	// open on both directions.
	start := time.Now()
	results := make([]bulkResult, *bulk)
	var bwg sync.WaitGroup
	for s := 0; s < *bulk; s++ {
		bwg.Add(1)
		go func(s int) {
			defer bwg.Done()
			results[s] = runBulk(base+"/v1/batch", bufs[s].Bytes())
		}(s)
	}
	bwg.Wait()
	elapsed := time.Since(start)
	stop.Store(true)
	iwg.Wait()
	close(statsCh)

	var ws workerStats
	for s := range statsCh {
		ws.ok += s.ok
		ws.shed += s.shed
		ws.bad += s.bad
		ws.netErr += s.netErr
		ws.lats = append(ws.lats, s.lats...)
	}

	failed := false
	gotLines := 0
	for s, r := range results {
		switch {
		case r.err != nil:
			failed = true
			fmt.Fprintf(os.Stderr, "loadgen: FAIL bulk stream %d: %v\n", s, r.err)
		case r.status != http.StatusOK:
			failed = true
			fmt.Fprintf(os.Stderr, "loadgen: FAIL bulk stream %d: status %d\n", s, r.status)
		case r.torn:
			failed = true
			fmt.Fprintf(os.Stderr, "loadgen: FAIL bulk stream %d: torn final line\n", s)
		case r.lines != counts[s]:
			failed = true
			fmt.Fprintf(os.Stderr, "loadgen: FAIL bulk stream %d: sent %d lines, got %d back\n", s, counts[s], r.lines)
		case r.errLines != 0:
			failed = true
			fmt.Fprintf(os.Stderr, "loadgen: FAIL bulk stream %d: %d in-stream error lines\n", s, r.errLines)
		}
		gotLines += r.lines
	}

	rps := float64(gotLines) / elapsed.Seconds()
	p50 := quantile(ws.lats, 0.50)
	p99 := quantile(ws.lats, 0.99)
	fmt.Printf("loadgen: bulk     %d/%d recipes in %.2fs = %.1f recipes/s\n",
		gotLines, total, elapsed.Seconds(), rps)
	fmt.Printf("loadgen: interactive %d ok, %d shed (429), %d bad, %d net errors; p50=%s p99=%s\n",
		ws.ok, ws.shed, ws.bad, ws.netErr, p50, p99)

	if ws.bad > 0 || ws.netErr > 0 {
		failed = true
		fmt.Fprintf(os.Stderr, "loadgen: FAIL interactive: %d unexpected statuses, %d transport errors\n", ws.bad, ws.netErr)
	}
	if *maxShedFrac > 0 {
		if tot := ws.ok + ws.shed; tot > 0 && float64(ws.shed)/float64(tot) > *maxShedFrac {
			failed = true
			fmt.Fprintf(os.Stderr, "loadgen: FAIL interactive shed fraction %.3f exceeds %.3f\n",
				float64(ws.shed)/float64(tot), *maxShedFrac)
		}
	}
	if *sloP50 > 0 && p50 > *sloP50 {
		failed = true
		fmt.Fprintf(os.Stderr, "loadgen: FAIL p50 %s exceeds SLO %s\n", p50, *sloP50)
	}
	if *sloP99 > 0 && p99 > *sloP99 {
		failed = true
		fmt.Fprintf(os.Stderr, "loadgen: FAIL p99 %s exceeds SLO %s\n", p99, *sloP99)
	}
	if *minRPS > 0 && rps < *minRPS {
		failed = true
		fmt.Fprintf(os.Stderr, "loadgen: FAIL bulk throughput %.1f recipes/s below floor %.1f\n", rps, *minRPS)
	}

	var after map[string]float64
	if needScrape {
		if after, err = scrapeMetrics(base); err != nil {
			fatalf("scraping /metrics after run: %v", err)
		}
	}
	if *metricsCheck {
		delta := func(name string) float64 { return after[name] - before[name] }
		if d := delta("nutriserve_batch_lines_total"); d != float64(total) {
			failed = true
			fmt.Fprintf(os.Stderr, "loadgen: FAIL /metrics batch_lines_total delta %.0f, want %d\n", d, total)
		}
		if d := delta("nutriserve_batch_line_errors_total"); d != 0 {
			failed = true
			fmt.Fprintf(os.Stderr, "loadgen: FAIL /metrics batch_line_errors_total delta %.0f, want 0\n", d)
		}
		if d := delta("nutriserve_batch_windows_total"); d < 1 {
			failed = true
			fmt.Fprintf(os.Stderr, "loadgen: FAIL /metrics batch_windows_total delta %.0f, want >= 1\n", d)
		}
		if got := after["nutriserve_batch_streams_active"]; got != before["nutriserve_batch_streams_active"] {
			failed = true
			fmt.Fprintf(os.Stderr, "loadgen: FAIL /metrics batch_streams_active did not return to %.0f (got %.0f)\n",
				before["nutriserve_batch_streams_active"], got)
		}
		if !failed {
			fmt.Printf("loadgen: /metrics deltas verified (lines=%d, errors=0, active back to baseline)\n", total)
		}
	}
	if needScrape {
		// The phrase cache fronts every estimation the run drove —
		// interactive and bulk alike — so its counter deltas give the
		// run's own hit ratio regardless of what the server saw before.
		key := func(name string) string { return name + `{cache="phrase"}` }
		hits := after[key("nutriserve_memo_hits_total")] - before[key("nutriserve_memo_hits_total")]
		misses := after[key("nutriserve_memo_misses_total")] - before[key("nutriserve_memo_misses_total")]
		ratio := 0.0
		if hits+misses > 0 {
			ratio = hits / (hits + misses)
		}
		fmt.Printf("loadgen: phrase-cache hit ratio over run: %.3f (%.0f hits / %.0f lookups, policy deltas: admit=%.0f reject=%.0f)\n",
			ratio, hits, hits+misses,
			after[key("nutriserve_memo_admissions_total")]-before[key("nutriserve_memo_admissions_total")],
			after[key("nutriserve_memo_rejections_total")]-before[key("nutriserve_memo_rejections_total")])
		if *minHitRatio > 0 {
			switch {
			case hits+misses == 0:
				failed = true
				fmt.Fprintf(os.Stderr, "loadgen: FAIL -min-hit-ratio set but the run drove no cache lookups (cache disabled?)\n")
			case ratio < *minHitRatio:
				failed = true
				fmt.Fprintf(os.Stderr, "loadgen: FAIL phrase-cache hit ratio %.3f below floor %.3f\n", ratio, *minHitRatio)
			}
		}
	}

	if failed {
		os.Exit(1)
	}
	fmt.Println("loadgen: PASS")
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "loadgen: "+format+"\n", args...)
	os.Exit(1)
}

type bulkResult struct {
	lines    int
	errLines int
	torn     bool
	status   int
	err      error
}

// runBulk streams one pre-rendered NDJSON buffer through /v1/batch and
// audits the response stream line by line: every line must be complete
// (newline-terminated) and valid JSON.
func runBulk(url string, body []byte) bulkResult {
	client := &http.Client{} // no timeout: a paper-scale stream runs for minutes
	req, err := http.NewRequest(http.MethodPost, url, bytes.NewReader(body))
	if err != nil {
		return bulkResult{err: err}
	}
	req.Header.Set("Content-Type", "application/x-ndjson")
	resp, err := client.Do(req)
	if err != nil {
		return bulkResult{err: err}
	}
	defer resp.Body.Close()
	res := bulkResult{status: resp.StatusCode}
	if res.status != http.StatusOK {
		io.Copy(io.Discard, resp.Body)
		return res
	}
	br := bufio.NewReaderSize(resp.Body, 1<<20)
	for {
		line, rerr := br.ReadBytes('\n')
		if n := len(line); n > 0 && line[n-1] == '\n' {
			line = line[:n-1]
			if !json.Valid(line) {
				res.err = fmt.Errorf("response line %d is not valid JSON", res.lines+1)
				return res
			}
			res.lines++
			if bytes.HasPrefix(line, []byte(`{"error"`)) {
				res.errLines++
			}
		} else if len(line) > 0 {
			res.torn = true
		}
		if rerr == io.EOF {
			return res
		}
		if rerr != nil {
			res.err = rerr
			return res
		}
	}
}

type workerStats struct {
	ok, shed, bad, netErr int
	lats                  []time.Duration
}

// interactiveWorker fires alternating /v1/estimate and /v1/recipe
// requests until stop flips, recording the latency of every 200. With
// Zipf samplers the key choice is skewed (rank 0 hottest); nil
// samplers fall back to a uniform draw.
func interactiveWorker(stop *atomic.Bool, base string, phrases []string, recipes []recipeLine,
	zipfPhrase, zipfRecipe *recipedb.Zipf, wid int) workerStats {
	rng := rand.New(rand.NewSource(int64(wid)*7919 + 1))
	pick := func(z *recipedb.Zipf, n int) int {
		if z != nil {
			return z.Rank(rng.Float64())
		}
		return rng.Intn(n)
	}
	client := &http.Client{Timeout: 30 * time.Second}
	var ws workerStats
	for !stop.Load() {
		var url string
		var body []byte
		if len(recipes) == 0 || rng.Intn(2) == 0 {
			b, _ := json.Marshal(estimateLine{Phrase: phrases[pick(zipfPhrase, len(phrases))]})
			url, body = base+"/v1/estimate", b
		} else {
			b, _ := json.Marshal(recipes[pick(zipfRecipe, len(recipes))])
			url, body = base+"/v1/recipe", b
		}
		t0 := time.Now()
		resp, err := client.Post(url, "application/json", bytes.NewReader(body))
		if err != nil {
			ws.netErr++
			continue
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		d := time.Since(t0)
		switch resp.StatusCode {
		case http.StatusOK:
			ws.ok++
			ws.lats = append(ws.lats, d)
		case http.StatusTooManyRequests:
			ws.shed++
		default:
			ws.bad++
		}
	}
	return ws
}

// scrapeMetrics parses the un-labeled families of a Prometheus text
// exposition into name → value (labeled series keep their label string
// in the key, which is fine for delta arithmetic on exact series).
func scrapeMetrics(base string) (map[string]float64, error) {
	resp, err := http.Get(base + "/metrics")
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("/metrics status %d", resp.StatusCode)
	}
	m := map[string]float64{}
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64<<10), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		sp := strings.LastIndexByte(line, ' ')
		if sp <= 0 {
			continue
		}
		if v, perr := strconv.ParseFloat(line[sp+1:], 64); perr == nil {
			m[line[:sp]] = v
		}
	}
	return m, sc.Err()
}

// quantile returns the q-th latency quantile (nearest-rank) of lats.
func quantile(lats []time.Duration, q float64) time.Duration {
	if len(lats) == 0 {
		return 0
	}
	sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
	i := int(q * float64(len(lats)-1))
	return lats[i]
}
